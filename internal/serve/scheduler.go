// Package serve is the networked serving runtime: it fronts a core.Server
// with a dynamic micro-batching scheduler and an HTTP API (cmd/costestd is
// the daemon around it). Concurrent requests fan into one bounded queue and
// a dispatcher coalesces them into single EstimateBatch calls per size- or
// deadline-bounded window — the inference-server batching idiom — while the
// robustness contract does the real work:
//
//   - Admission control: the queue is bounded and Submit never blocks on a
//     full queue; overload is an immediate ErrOverloaded (HTTP 503 +
//     Retry-After), not unbounded growth.
//   - Admitted means answered: every request that enters the queue receives
//     exactly one response, even across dispatcher panics and shutdown.
//   - Deadlines propagate: a request whose context expires while queued is
//     answered with its context error before batch dispatch — never silently
//     served late.
//   - Graceful drain: Close stops admissions, flushes everything already
//     admitted (concurrent publishes included), then returns.
//   - Degraded beats down: a circuit breaker on consecutive batch failures
//     trips the dispatcher into a fallback path serving single-plan
//     estimates from the last-known-good snapshot (flagged degraded), with
//     half-open probing to recover — an estimator that starts failing turns
//     into stale-but-correct answers, not an outage.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/feature"
)

// Admission errors. Handlers map both to HTTP 503 with a Retry-After hint;
// clients should back off and retry elsewhere or later.
var (
	// ErrOverloaded reports a full admission queue.
	ErrOverloaded = errors.New("serve: queue full, request rejected")
	// ErrDraining reports a scheduler that has stopped admitting (shutdown).
	ErrDraining = errors.New("serve: draining, not admitting requests")
)

// SchedulerConfig tunes the micro-batching scheduler.
type SchedulerConfig struct {
	// QueueDepth bounds the admission queue; a full queue rejects instead of
	// growing. <= 0 defaults to 256.
	QueueDepth int
	// MaxBatch caps how many requests one EstimateBatch call serves.
	// <= 0 defaults to 64.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits after a batch's first
	// request for more to coalesce. 0 disables waiting: the dispatcher still
	// drains whatever is already queued into one batch (greedy coalescing)
	// but never delays a lone request.
	BatchWindow time.Duration
	// Workers is passed to Server.EstimateBatch (<= 0 means GOMAXPROCS).
	Workers int
	// BreakerFailures is how many consecutive batch failures (estimator
	// errors or panics) trip the circuit breaker into degraded serving.
	// <= 0 defaults to 3.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker serves pure fallback
	// before a half-open probe retries the primary path. 0 defaults to
	// 250ms; negative probes on every batch (useful in tests).
	BreakerCooldown time.Duration
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	return c
}

// Result is one served estimate and the snapshot version that produced it.
// Degraded marks an estimate served by the circuit breaker's fallback path:
// still bit-identical to its reported (last-known-good) version, but not the
// freshest published model and not micro-batched.
type Result struct {
	Cost     float64
	Card     float64
	Version  uint64
	Degraded bool
}

// response is the dispatcher's answer to one request.
type response struct {
	res Result
	err error
}

// request is one admitted estimate waiting for dispatch. done is buffered so
// the dispatcher can always complete a request without blocking on its
// waiter. Requests are pooled: the admission contract (exactly one response
// per admitted request, received by its submitter) guarantees done is empty
// again by the time a request is recycled.
type request struct {
	ctx  context.Context
	ep   *feature.EncodedPlan
	done chan response
}

// SchedulerStats is a point-in-time counter snapshot.
type SchedulerStats struct {
	// Admission outcomes.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"` // queue full at admission
	Drained  uint64 `json:"drained"`  // rejected because draining
	// Dispatch outcomes (admitted = served + expired + failed once idle).
	Served  uint64 `json:"served"`
	Expired uint64 `json:"expired"` // context expired before batch dispatch
	Failed  uint64 `json:"failed"`  // answered with an estimator error
	Panics  uint64 `json:"panics"`  // dispatcher panics survived
	// Coalescing.
	Batches        uint64  `json:"batches"`
	MeanBatch      float64 `json:"mean_batch"`
	QueueHighWater int     `json:"queue_high_water"`
	QueueDepth     int     `json:"queue_depth"`
	// Circuit breaker / degraded serving.
	BreakerOpen     bool   `json:"breaker_open"`
	BreakerTrips    uint64 `json:"breaker_trips"`
	BreakerProbes   uint64 `json:"breaker_probes"` // half-open probes attempted
	Degraded        uint64 `json:"degraded"`       // requests served from the fallback snapshot
	FallbackVersion uint64 `json:"fallback_version"`
}

// Scheduler is the micro-batching front end over a core.Server. Create with
// NewScheduler, start the dispatcher with Start, stop with Close.
type Scheduler struct {
	srv *core.Server
	cfg SchedulerConfig

	// queue is the bounded fan-in channel decoupling producers from the
	// dispatcher. Admission sends are non-blocking; the dispatcher is the
	// only receiver.
	queue chan *request

	// admitMu linearizes admission against Close: Submit sends while holding
	// the read side, Close flips draining and closes the queue under the
	// write side, so no send can race the close and every request admitted
	// before the drain decision is in the queue when the dispatcher flushes.
	admitMu  sync.RWMutex
	draining bool

	wg sync.WaitGroup

	admitted, rejected, drained  atomic.Uint64
	served, expired, failed      atomic.Uint64
	panics, batches, batchedReqs atomic.Uint64
	queueHW                      atomic.Int64

	// Circuit-breaker state. consecFails, good and lastTrip are
	// dispatcher-owned (single goroutine); the atomics mirror what probes
	// and Stats read concurrently.
	consecFails    int
	good           *core.ModelSnapshot // last-known-good, reference held
	lastTrip       time.Time
	brkOpen        atomic.Bool
	trips, probes  atomic.Uint64
	degradedServed atomic.Uint64
	goodVersion    atomic.Uint64
	// now is the breaker's clock (tests substitute a fake one).
	now func() time.Time

	// dispatcher-owned scratch (single goroutine, reused across batches).
	batch []*request
	live  []*request
	eps   []*feature.EncodedPlan
	res   []core.Estimate
	timer *time.Timer

	// reqPool recycles request objects (each with its 1-buffered done
	// channel) across Submit calls, keeping the admit and reject warm paths
	// allocation-free under steady load.
	reqPool sync.Pool
}

// NewScheduler builds a scheduler over srv. Call Start before Submit;
// requests submitted to an unstarted scheduler queue up (and are rejected
// once the queue fills) but are not dispatched.
func NewScheduler(srv *core.Server, cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		srv:   srv,
		cfg:   cfg,
		queue: make(chan *request, cfg.QueueDepth),
		batch: make([]*request, 0, cfg.MaxBatch),
		live:  make([]*request, 0, cfg.MaxBatch),
		eps:   make([]*feature.EncodedPlan, 0, cfg.MaxBatch),
		res:   make([]core.Estimate, cfg.MaxBatch),
		timer: time.NewTimer(time.Hour),
		now:   time.Now,
	}
	s.reqPool.New = func() any {
		return &request{done: make(chan response, 1)}
	}
	if !s.timer.Stop() {
		<-s.timer.C
	}
	return s
}

// Start launches the dispatcher goroutine. Start once; Close stops it.
func (s *Scheduler) Start() {
	s.wg.Add(1)
	go s.dispatch()
}

// Submit admits one plan for batched estimation and blocks until its batch
// is served (or its admission is refused). The contract:
//
//   - A full queue returns ErrOverloaded immediately — Submit never blocks
//     on admission, so overload backpressure reaches callers at once.
//   - After Close has begun draining, Submit returns ErrDraining.
//   - An admitted request always gets exactly one answer. If ctx expires
//     before its batch dispatches, that answer is ctx's error; an admitted
//     request is never silently served late or dropped.
//
// costlint:noalloc
func (s *Scheduler) Submit(ctx context.Context, ep *feature.EncodedPlan) (Result, error) {
	r := s.reqPool.Get().(*request)
	r.ctx, r.ep = ctx, ep
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		s.drained.Add(1)
		s.putRequest(r)
		return Result{}, ErrDraining
	}
	select {
	case s.queue <- r:
	default:
		s.admitMu.RUnlock()
		s.rejected.Add(1)
		s.putRequest(r)
		return Result{}, ErrOverloaded
	}
	s.admitMu.RUnlock()
	s.admitted.Add(1)
	if d := int64(len(s.queue)); d > s.queueHW.Load() {
		// Racy high-water update is fine: the mark is a diagnostic floor.
		s.queueHW.Store(d)
	}
	// Admitted: the dispatcher owns the request now and is guaranteed to
	// answer (drain contract), so waiting on done alone cannot hang. Once the
	// response is in hand the dispatcher is done with the request, so it can
	// be recycled here.
	resp := <-r.done
	s.putRequest(r)
	return resp.res, resp.err
}

// putRequest recycles a request whose done channel is known empty (never
// admitted, or admitted and already answered). References are cleared so a
// pooled request does not retain its caller's context or plan.
//
// costlint:noalloc
func (s *Scheduler) putRequest(r *request) {
	r.ctx, r.ep = nil, nil
	s.reqPool.Put(r)
}

// Close drains the scheduler: admission stops (Submit returns ErrDraining),
// everything already admitted is flushed through the dispatcher, and Close
// returns once the last response has been delivered. Safe to call once;
// subsequent Submits keep failing fast.
func (s *Scheduler) Close() {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	close(s.queue) // no sender can be in flight: sends hold admitMu.RLock
	s.admitMu.Unlock()
	s.wg.Wait()
}

// Draining reports whether Close has begun: once true, Submit fails fast
// with ErrDraining (readiness probes flip unready on it).
func (s *Scheduler) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Admitted:        s.admitted.Load(),
		Rejected:        s.rejected.Load(),
		Drained:         s.drained.Load(),
		Served:          s.served.Load(),
		Expired:         s.expired.Load(),
		Failed:          s.failed.Load(),
		Panics:          s.panics.Load(),
		Batches:         s.batches.Load(),
		QueueHighWater:  int(s.queueHW.Load()),
		QueueDepth:      len(s.queue),
		BreakerOpen:     s.brkOpen.Load(),
		BreakerTrips:    s.trips.Load(),
		BreakerProbes:   s.probes.Load(),
		Degraded:        s.degradedServed.Load(),
		FallbackVersion: s.goodVersion.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(s.batchedReqs.Load()) / float64(st.Batches)
	}
	return st
}

// Degraded reports whether the circuit breaker is open — the scheduler is
// answering from the last-known-good snapshot instead of the primary batch
// path. Readiness probes use it to report "degraded" distinctly from
// "draining": a degraded daemon still answers.
func (s *Scheduler) Degraded() bool { return s.brkOpen.Load() }

// RetryAfterHint estimates how long a rejected client should wait before
// retrying: the time for the dispatcher to drain everything currently queued
// at the configured coalescing rate — ceil(depth/MaxBatch)+1 batches, each
// costing at least a batch window (floored at 1ms of dispatch + model time).
// HTTP 503s derive their Retry-After from this instead of a constant, so the
// hint scales with how backed up the daemon actually is.
func (s *Scheduler) RetryAfterHint() time.Duration {
	per := s.cfg.BatchWindow
	if per < time.Millisecond {
		per = time.Millisecond
	}
	batches := len(s.queue)/s.cfg.MaxBatch + 1
	return time.Duration(batches) * per
}

// dispatch is the single consumer: it blocks for a batch's first request,
// coalesces more up to MaxBatch or the BatchWindow deadline, and serves the
// batch with one EstimateBatch call. A closed queue (Close) drains naturally:
// buffered requests keep arriving until the channel reports empty-and-closed,
// and every one of them is answered before the goroutine exits.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	defer s.releaseGood()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		s.batch = append(s.batch[:0], first)
		s.coalesce()
		s.runBatch(s.batch)
	}
}

// rotateGood makes snap the breaker's last-known-good fallback snapshot,
// taking ownership of the caller's acquired reference. The previous holder's
// reference is released, so at most one superseded snapshot is ever kept
// alive by the breaker — its buffers rejoin the delta-publication rotation
// the moment a newer batch succeeds.
func (s *Scheduler) rotateGood(snap *core.ModelSnapshot) {
	if s.good == snap {
		s.srv.ReleaseSnapshot(snap) // same snapshot: drop the duplicate ref
		return
	}
	if s.good != nil {
		s.srv.ReleaseSnapshot(s.good)
	}
	s.good = snap
	s.goodVersion.Store(snap.Version())
}

// releaseGood drops the fallback retention when the dispatcher exits.
func (s *Scheduler) releaseGood() {
	if s.good != nil {
		s.srv.ReleaseSnapshot(s.good)
		s.good = nil
	}
}

// coalesce fills the current batch from the queue: greedily when no window
// is configured, otherwise waiting up to BatchWindow past the first request
// for stragglers. The window is what turns concurrent load into large
// batches; a lone request still ships after at most BatchWindow.
func (s *Scheduler) coalesce() {
	for len(s.batch) < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return
			}
			s.batch = append(s.batch, r)
			continue
		default:
		}
		if s.cfg.BatchWindow <= 0 {
			return
		}
		s.timer.Reset(s.cfg.BatchWindow)
		windowOpen := true
		for windowOpen && len(s.batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					windowOpen = false
				} else {
					s.batch = append(s.batch, r)
				}
			case <-s.timer.C:
				return // timer fired: no drain needed on this path
			}
		}
		if !s.timer.Stop() {
			<-s.timer.C
		}
		return
	}
}

// runBatch answers every request in the batch: expired ones with their
// context error before dispatch, the rest from one EstimateBatch call (or
// the batch's failure, if the estimator errored — a panic fails only this
// batch's requests, never the dispatcher). The circuit breaker wraps the
// primary call:
//
//   - closed: batches run normally; each failure increments a consecutive
//     counter, and hitting BreakerFailures trips the breaker open.
//   - open, inside BreakerCooldown: the primary path is not even tried —
//     every request is answered from the last-known-good snapshot, one
//     single-plan Estimate each, flagged degraded.
//   - open, cooldown elapsed: the batch is a half-open probe through the
//     primary path. Success closes the breaker; failure re-arms the
//     cooldown and the batch falls back to degraded answers.
//
// A failing batch with no fallback yet (no batch ever succeeded) is
// answered with its error — there is nothing stale-but-correct to serve.
func (s *Scheduler) runBatch(batch []*request) {
	s.live, s.eps = s.live[:0], s.eps[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			s.expired.Add(1)
			r.done <- response{err: fmt.Errorf("serve: request expired before dispatch: %w", err)}
			continue
		}
		s.live = append(s.live, r)
		s.eps = append(s.eps, r.ep)
	}
	if len(s.live) == 0 {
		return
	}

	probing := false
	if s.brkOpen.Load() {
		if s.now().Sub(s.lastTrip) < s.cfg.BreakerCooldown {
			s.serveDegraded(s.live)
			return
		}
		probing = true
		s.probes.Add(1)
	}

	ests, snap, err := s.estimateBatch(s.eps)
	s.batches.Add(1)
	s.batchedReqs.Add(uint64(len(s.live)))
	if err != nil {
		s.consecFails++
		if probing {
			s.lastTrip = s.now() // probe failed: re-arm the cooldown
		} else if s.consecFails >= s.cfg.BreakerFailures && !s.brkOpen.Load() {
			s.lastTrip = s.now()
			s.trips.Add(1)
			s.brkOpen.Store(true)
		}
		if s.brkOpen.Load() && s.good != nil {
			s.serveDegraded(s.live)
			return
		}
		for _, r := range s.live {
			s.failed.Add(1)
			r.done <- response{err: err}
		}
		return
	}

	// Success: reset the breaker and retain this exact snapshot as the new
	// last-known-good fallback.
	s.consecFails = 0
	if s.brkOpen.Load() {
		s.brkOpen.Store(false)
	}
	version := snap.Version()
	s.rotateGood(snap)
	for i, r := range s.live {
		s.served.Add(1)
		r.done <- response{res: Result{Cost: ests[i].Cost, Card: ests[i].Card, Version: version}}
	}
}

// estimateBatch runs one batch through the primary path against an acquired
// snapshot, returning the snapshot (still acquired — ownership passes to the
// caller) on success. Panic recovery keeps one poisoned plan from taking the
// dispatcher (and with it every future request) down; the "serve.batch"
// fault hook is where chaos tests inject estimator failures.
func (s *Scheduler) estimateBatch(eps []*feature.EncodedPlan) (ests []core.Estimate, snap *core.ModelSnapshot, err error) {
	defer func() {
		if p := recover(); p != nil {
			if snap != nil {
				s.srv.ReleaseSnapshot(snap)
			}
			s.panics.Add(1)
			ests, snap, err = nil, nil, fmt.Errorf("serve: estimator panic: %v", p)
		}
	}()
	if err := fault.Point(fault.SiteServeBatch); err != nil {
		return nil, nil, err
	}
	snap = s.srv.AcquireSnapshot()
	// The dispatcher owns s.res (single goroutine) and every response is
	// copied out before the next batch reuses it, so writing estimates into
	// the shared scratch keeps the steady-state serve path allocation-free.
	ests = s.srv.EstimateBatchInto(snap, eps, s.res[:len(eps)], s.cfg.Workers)
	return ests, snap, nil
}

// serveDegraded answers every live request from the last-known-good
// snapshot: one single-plan Estimate each against the retained snapshot's
// frozen weights — no batching, no pool, nothing shared with the failing
// primary path — flagged degraded and stamped with the fallback version, so
// each answer is still bit-identical to a single-threaded evaluation of the
// version it reports.
func (s *Scheduler) serveDegraded(live []*request) {
	for _, r := range live {
		res, err := s.fallbackOne(r.ep)
		if err != nil {
			s.failed.Add(1)
			r.done <- response{err: err}
			continue
		}
		s.served.Add(1)
		s.degradedServed.Add(1)
		r.done <- response{res: res}
	}
}

// fallbackOne serves one plan from the fallback snapshot with its own panic
// containment (a poisoned plan fails alone, degraded mode survives).
func (s *Scheduler) fallbackOne(ep *feature.EncodedPlan) (res Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			res, err = Result{}, fmt.Errorf("serve: degraded estimate panic: %v", p)
		}
	}()
	if s.good == nil {
		return Result{}, errors.New("serve: degraded with no last-known-good snapshot")
	}
	cost, card := s.good.Model().Estimate(ep)
	return Result{Cost: cost, Card: card, Version: s.good.Version(), Degraded: true}, nil
}
