package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/feature"
)

// Service is the HTTP face of the estimator daemon: it decodes wire plans,
// routes them through the micro-batching scheduler, and exposes the health,
// readiness and statistics endpoints an orchestrator probes. Handlers are
// panic-recovered individually — a failing request 500s alone, the daemon
// keeps serving.
type Service struct {
	sched *Scheduler
	srv   *core.Server
	enc   *feature.Encoder

	// RetryAfter is the back-off hint attached to 503 responses (rounded up
	// to whole seconds, minimum 1).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (another unbounded-growth guard);
	// <= 0 defaults to 1 MiB.
	MaxBodyBytes int64

	ready  atomic.Bool
	sample atomic.Pointer[WirePlan]
}

// NewService wires the HTTP layer over a scheduler. The service starts
// unready; call SetReady(true) once the model is loaded and the scheduler
// started.
func NewService(sched *Scheduler, srv *core.Server, enc *feature.Encoder) *Service {
	return &Service{sched: sched, srv: srv, enc: enc, RetryAfter: time.Second}
}

// SetReady flips the /readyz gate. Readiness additionally requires the
// scheduler not to be draining, so shutdown reports unready the instant the
// drain begins, with no extra call.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// SetSample installs the wire plan served by /samplez — a known-valid
// example request against this daemon's schema, so clients (and the CI smoke
// test) can discover the request shape without reading the source.
func (s *Service) SetSample(w *WirePlan) { s.sample.Store(w) }

// estimateRequest is the /estimate body: exactly one of Plan or Plans.
type estimateRequest struct {
	Plan  *WirePlan   `json:"plan,omitempty"`
	Plans []*WirePlan `json:"plans,omitempty"`
	// TimeoutMS bounds this request's time in the daemon (admission wait +
	// batch dispatch); expired requests are answered 504, never served late.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// wireEstimate is one estimate in a response.
type wireEstimate struct {
	Cost    float64 `json:"cost"`
	Card    float64 `json:"card"`
	Version uint64  `json:"version"`
}

type estimateResponse struct {
	Estimates []wireEstimate `json:"estimates"`
}

// statszResponse is the /statsz body.
type statszResponse struct {
	Version   uint64          `json:"version"`
	Scheduler SchedulerStats  `json:"scheduler"`
	Pool      *poolStats      `json:"pool,omitempty"`
	Drain     core.DrainStats `json:"snapshot_drain"`
}

type poolStats struct {
	Entries   int     `json:"entries"`
	Bound     int     `json:"bound"`
	HitRate   float64 `json:"hit_rate"`
	StaleRate float64 `json:"stale_rate"`
}

// Handler returns the daemon's HTTP mux, every route wrapped in per-request
// panic recovery.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/samplez", s.handleSamplez)
	return s.recoverWrap(mux)
}

// recoverWrap fails only the panicking request: the connection gets a 500
// (when nothing was written yet) and the daemon keeps serving.
func (s *Service) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || s.sched.Draining() {
		s.unavailable(w, "not ready")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Service) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{
		Version:   s.srv.Version(),
		Scheduler: s.sched.Stats(),
		Drain:     s.srv.SnapshotDrainStats(),
	}
	if p := s.srv.Pool(); p != nil {
		resp.Pool = &poolStats{
			Entries:   p.Len(),
			Bound:     p.Bound(),
			HitRate:   p.HitRate(),
			StaleRate: p.StaleRate(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSamplez(w http.ResponseWriter, r *http.Request) {
	sample := s.sample.Load()
	if sample == nil {
		http.Error(w, "no sample plan installed", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, estimateRequest{Plan: sample})
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		s.unavailable(w, "model not ready")
		return
	}
	maxBody := s.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	var req estimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	plans := req.Plans
	if req.Plan != nil {
		if len(plans) > 0 {
			http.Error(w, "bad request: set plan or plans, not both", http.StatusBadRequest)
			return
		}
		plans = []*WirePlan{req.Plan}
	}
	if len(plans) == 0 {
		http.Error(w, "bad request: no plan", http.StatusBadRequest)
		return
	}

	// Decode and feature-encode before admission, so invalid requests are
	// 400s at the boundary and never occupy queue slots.
	eps := make([]*feature.EncodedPlan, len(plans))
	for i, wp := range plans {
		root, err := wp.Decode()
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		ep, err := s.enc.Encode(root)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		eps[i] = ep
	}

	// Deadline propagation: the request context (client disconnects cancel
	// it) plus the optional explicit budget.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Each plan is submitted individually — concurrently for multi-plan
	// requests — so the scheduler coalesces across connections and within a
	// request by the same rules.
	results := make([]Result, len(eps))
	errs := make([]error, len(eps))
	if len(eps) == 1 {
		results[0], errs[0] = s.sched.Submit(ctx, eps[0])
	} else {
		var wg sync.WaitGroup
		for i := range eps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = s.sched.Submit(ctx, eps[i])
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		switch {
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
			s.unavailable(w, err.Error())
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	resp := estimateResponse{Estimates: make([]wireEstimate, len(results))}
	for i, res := range results {
		resp.Estimates[i] = wireEstimate{Cost: res.Cost, Card: res.Card, Version: res.Version}
	}
	writeJSON(w, http.StatusOK, resp)
}

// unavailable writes a 503 with the Retry-After back-off hint — the
// admission-control response: reject loudly and immediately, never queue
// without bound.
func (s *Service) unavailable(w http.ResponseWriter, msg string) {
	secs := int(s.RetryAfter / time.Second)
	if s.RetryAfter%time.Second != 0 || secs < 1 {
		secs++
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
