package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/feature"
)

// Service is the HTTP face of the estimator daemon: it decodes wire plans,
// routes them through the micro-batching scheduler, and exposes the health,
// readiness and statistics endpoints an orchestrator probes. Handlers are
// panic-recovered individually — a failing request 500s alone, the daemon
// keeps serving.
type Service struct {
	sched *Scheduler
	srv   *core.Server
	enc   *feature.Encoder

	// RetryAfter floors the back-off hint attached to 503 responses. The
	// actual hint is derived per response from the scheduler's current queue
	// depth and batch window (see Scheduler.RetryAfterHint), plus a random
	// jitter of up to half the hint so a synchronized rejection burst does
	// not come back as a synchronized retry storm.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (another unbounded-growth guard);
	// <= 0 defaults to 1 MiB.
	MaxBodyBytes int64
	// SupervisorStats, when set, is rendered under "supervisor" in /statsz —
	// the daemon installs its retrain supervisor's counters here.
	SupervisorStats func() any
	// ReplicationStats, when set, is rendered under "replication" in
	// /statsz — a replication primary installs its publisher's counters, a
	// replica its follower's (generation, lag, frames applied/rejected).
	ReplicationStats func() any
	// GenerationOf, when set, maps a local snapshot version to cluster
	// (epoch, generation) coordinates, which /estimate responses then carry
	// so clients can anchor cross-replica comparisons. Versions the
	// replication runtime has not (yet) mapped report ok=false and the
	// fields are omitted.
	GenerationOf func(version uint64) (epoch, gen uint64, ok bool)
	// ClusterState, when set, reports the cluster member's role
	// ("following" / "promoting" / "primary"); /readyz reflects it so an
	// orchestrator can see a failover in flight.
	ClusterState func() string
	// ClusterStats, when set, is rendered under "cluster" in /statsz — an
	// HA cluster member installs its MemberStats here (state, epoch, lease,
	// promotion counters).
	ClusterStats func() any

	ready  atomic.Bool
	sample atomic.Pointer[WirePlan]
}

// NewService wires the HTTP layer over a scheduler. The service starts
// unready; call SetReady(true) once the model is loaded and the scheduler
// started.
func NewService(sched *Scheduler, srv *core.Server, enc *feature.Encoder) *Service {
	return &Service{sched: sched, srv: srv, enc: enc, RetryAfter: time.Second}
}

// SetReady flips the /readyz gate. Readiness additionally requires the
// scheduler not to be draining, so shutdown reports unready the instant the
// drain begins, with no extra call.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// SetSample installs the wire plan served by /samplez — a known-valid
// example request against this daemon's schema, so clients (and the CI smoke
// test) can discover the request shape without reading the source.
func (s *Service) SetSample(w *WirePlan) { s.sample.Store(w) }

// estimateRequest is the /estimate body: exactly one of Plan or Plans.
type estimateRequest struct {
	Plan  *WirePlan   `json:"plan,omitempty"`
	Plans []*WirePlan `json:"plans,omitempty"`
	// TimeoutMS bounds this request's time in the daemon (admission wait +
	// batch dispatch); expired requests are answered 504, never served late.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// wireEstimate is one estimate in a response. Degraded marks an answer from
// the circuit breaker's fallback path: served from the last-known-good
// snapshot (whose version it reports) instead of the freshest published one.
// Epoch and Generation are the cluster-wide replication coordinates of the
// serving model (present when the daemon replicates): two daemons reporting
// the same (epoch, generation) serve bit-identical estimates, whatever their
// local versions say.
type wireEstimate struct {
	Cost       float64 `json:"cost"`
	Card       float64 `json:"card"`
	Version    uint64  `json:"version"`
	Epoch      uint64  `json:"epoch,omitempty"`
	Generation uint64  `json:"generation,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
}

type estimateResponse struct {
	Estimates []wireEstimate `json:"estimates"`
}

// statszResponse is the /statsz body.
type statszResponse struct {
	Version    uint64          `json:"version"`
	Degraded   bool            `json:"degraded"`
	Scheduler  SchedulerStats  `json:"scheduler"`
	Pool       *poolStats      `json:"pool,omitempty"`
	Drain      core.DrainStats `json:"snapshot_drain"`
	Supervisor any             `json:"supervisor,omitempty"`
	// Replication carries PublisherStats on a primary, FollowerStats (lag
	// included) on a replica.
	Replication any `json:"replication,omitempty"`
	// Cluster carries MemberStats (state, epoch, lease, promotions) on an
	// HA cluster member.
	Cluster any `json:"cluster,omitempty"`
}

type poolStats struct {
	Entries   int     `json:"entries"`
	Bound     int     `json:"bound"`
	HitRate   float64 `json:"hit_rate"`
	StaleRate float64 `json:"stale_rate"`
}

// Handler returns the daemon's HTTP mux, every route wrapped in per-request
// panic recovery.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/samplez", s.handleSamplez)
	return s.recoverWrap(mux)
}

// recoverWrap fails only the panicking request: the connection gets a 500
// (when nothing was written yet) and the daemon keeps serving.
func (s *Service) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz distinguishes the daemon's three non-nominal states: draining
// (shutting down — stop sending traffic), not ready (no model yet), and
// degraded (breaker open, still answering from the last-known-good snapshot
// — an orchestrator should NOT kill a degraded daemon, it is the fallback).
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.sched.Draining() {
		s.unavailable(w, "draining")
		return
	}
	if !s.ready.Load() {
		s.unavailable(w, "not ready")
		return
	}
	w.WriteHeader(http.StatusOK)
	if s.sched.Degraded() {
		fmt.Fprintln(w, "degraded (serving from last-known-good snapshot)")
		return
	}
	if s.ClusterState != nil {
		if st := s.ClusterState(); st == "promoting" {
			// Mid-failover: still serving the sealed weights, but tell the
			// orchestrator an election is in flight.
			fmt.Fprintln(w, "promoting (taking over as replication primary)")
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func (s *Service) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{
		Version:   s.srv.Version(),
		Degraded:  s.sched.Degraded(),
		Scheduler: s.sched.Stats(),
		Drain:     s.srv.SnapshotDrainStats(),
	}
	if s.SupervisorStats != nil {
		resp.Supervisor = s.SupervisorStats()
	}
	if s.ReplicationStats != nil {
		resp.Replication = s.ReplicationStats()
	}
	if s.ClusterStats != nil {
		resp.Cluster = s.ClusterStats()
	}
	if p := s.srv.Pool(); p != nil {
		resp.Pool = &poolStats{
			Entries:   p.Len(),
			Bound:     p.Bound(),
			HitRate:   p.HitRate(),
			StaleRate: p.StaleRate(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleSamplez(w http.ResponseWriter, r *http.Request) {
	sample := s.sample.Load()
	if sample == nil {
		http.Error(w, "no sample plan installed", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, estimateRequest{Plan: sample})
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.ready.Load() {
		s.unavailable(w, "model not ready")
		return
	}
	maxBody := s.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	var req estimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	plans := req.Plans
	if req.Plan != nil {
		if len(plans) > 0 {
			http.Error(w, "bad request: set plan or plans, not both", http.StatusBadRequest)
			return
		}
		plans = []*WirePlan{req.Plan}
	}
	if len(plans) == 0 {
		http.Error(w, "bad request: no plan", http.StatusBadRequest)
		return
	}

	// Decode and feature-encode before admission, so invalid requests are
	// 400s at the boundary and never occupy queue slots.
	eps := make([]*feature.EncodedPlan, len(plans))
	for i, wp := range plans {
		root, err := wp.Decode()
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		ep, err := s.enc.Encode(root)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		eps[i] = ep
	}

	// Deadline propagation: the request context (client disconnects cancel
	// it) plus the optional explicit budget.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Each plan is submitted individually — concurrently for multi-plan
	// requests — so the scheduler coalesces across connections and within a
	// request by the same rules.
	results := make([]Result, len(eps))
	errs := make([]error, len(eps))
	if len(eps) == 1 {
		results[0], errs[0] = s.sched.Submit(ctx, eps[0])
	} else {
		var wg sync.WaitGroup
		for i := range eps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = s.sched.Submit(ctx, eps[i])
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		switch {
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
			s.unavailable(w, err.Error())
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	resp := estimateResponse{Estimates: make([]wireEstimate, len(results))}
	for i, res := range results {
		we := wireEstimate{
			Cost:     res.Cost,
			Card:     res.Card,
			Version:  res.Version,
			Degraded: res.Degraded,
		}
		if s.GenerationOf != nil {
			if ep, gen, ok := s.GenerationOf(res.Version); ok {
				we.Epoch, we.Generation = ep, gen
			}
		}
		resp.Estimates[i] = we
	}
	writeJSON(w, http.StatusOK, resp)
}

// unavailable writes a 503 with a Retry-After hint derived from the load the
// daemon is actually under — queue depth over batch throughput — rather than
// a constant: a client rejected by a nearly drained queue can retry almost
// immediately, one rejected by a full queue should stay away for the time the
// backlog needs. RetryAfter floors the hint; jitter (up to half the hint)
// de-synchronizes retry storms.
func (s *Service) unavailable(w http.ResponseWriter, msg string) {
	hint := s.sched.RetryAfterHint()
	if hint < s.RetryAfter {
		hint = s.RetryAfter
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSecs(hint, rand.Float64())))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// retryAfterSecs converts a back-off hint to whole seconds for the
// Retry-After header: the hint plus jit-scaled jitter of up to half the hint,
// rounded up, clamped to [1, 60]. Pure so tests can pin the jitter.
func retryAfterSecs(hint time.Duration, jit float64) int {
	jittered := hint + time.Duration(jit*float64(hint)/2)
	secs := int((jittered + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
