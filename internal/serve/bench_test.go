package serve

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"
)

// benchScheduler drives the scheduler with 16 concurrent submitters per
// GOMAXPROCS and reports, beyond the usual ns/op, the mean coalesced batch
// size (mean_batch/op) and the p99 request latency (p99_ns/op) — the numbers
// PERFORMANCE.md and BENCH_SERVE.json track.
func benchScheduler(b *testing.B, cfg SchedulerConfig) {
	_, eps := testCorpus(b, 301, 16)
	srv, _ := testServer(b, eps)
	s := NewScheduler(srv, cfg)
	s.Start()
	defer s.Close()

	var mu sync.Mutex
	var lats []time.Duration
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local []time.Duration
		i := 0
		for pb.Next() {
			t0 := time.Now()
			if _, err := s.Submit(context.Background(), eps[i%len(eps)]); err != nil {
				b.Error(err)
				return
			}
			local = append(local, time.Since(t0))
			i++
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	b.StopTimer()

	st := s.Stats()
	if st.Batches > 0 {
		b.ReportMetric(st.MeanBatch, "mean_batch/op")
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(lats[len(lats)*99/100]), "p99_ns/op")
	}
}

// BenchmarkSchedulerThroughput is the shipped configuration: a 200µs
// coalescing window over a 64-deep max batch.
func BenchmarkSchedulerThroughput(b *testing.B) {
	benchScheduler(b, SchedulerConfig{QueueDepth: 512, MaxBatch: 64, BatchWindow: 200 * time.Microsecond})
}

// BenchmarkSchedulerGreedy drops the window: the dispatcher still coalesces
// whatever is queued but never waits for stragglers.
func BenchmarkSchedulerGreedy(b *testing.B) {
	benchScheduler(b, SchedulerConfig{QueueDepth: 512, MaxBatch: 64})
}

// BenchmarkSchedulerUnbatched is the no-coalescing baseline (MaxBatch 1):
// what the same load costs when every request is its own model call.
func BenchmarkSchedulerUnbatched(b *testing.B) {
	benchScheduler(b, SchedulerConfig{QueueDepth: 512, MaxBatch: 1})
}
