package workload

import (
	"testing"

	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/schema"
	"costest/internal/sqlpred"
	"costest/internal/stats"
)

type schemaColumn = schema.Column

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
)

func TestGenerateValidQueries(t *testing.T) {
	g := NewGenerator(testDB, 3)
	qs := g.Generate(Spec{MinJoins: 0, MaxJoins: 3, MaxAtomsPerTable: 2, StringProb: 0.3, OrProb: 0.2}, 50)
	if len(qs) != 50 {
		t.Fatalf("generated %d queries, want 50", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v\n%s", i, err, q.SQL())
		}
		if !testDB.Schema.ConnectedSubset(q.Tables) {
			t.Fatalf("query %d tables not connected: %v", i, q.Tables)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := NewGenerator(testDB, 42).Generate(Spec{MaxJoins: 2, MaxAtomsPerTable: 2}, 10)
	b := NewGenerator(testDB, 42).Generate(Spec{MaxJoins: 2, MaxAtomsPerTable: 2}, 10)
	for i := range a {
		if a[i].SQL() != b[i].SQL() {
			t.Fatalf("nondeterministic generation at %d:\n%s\n%s", i, a[i].SQL(), b[i].SQL())
		}
	}
}

func TestJoinCountsWithinSpec(t *testing.T) {
	g := NewGenerator(testDB, 5)
	qs := g.Generate(Spec{MinJoins: 1, MaxJoins: 3, MaxAtomsPerTable: 1}, 30)
	for _, q := range qs {
		if q.NumJoins() < 1 || q.NumJoins() > 3 {
			t.Fatalf("join count %d outside [1,3]", q.NumJoins())
		}
		if len(q.Tables) != q.NumJoins()+1 {
			t.Fatalf("tables %d != joins+1 (%d)", len(q.Tables), q.NumJoins()+1)
		}
	}
}

func TestNumericOnlySpec(t *testing.T) {
	qs := Synthetic(testDB, 7, 30)
	for _, q := range qs {
		if q.NumJoins() > 2 {
			t.Fatalf("synthetic query with %d joins", q.NumJoins())
		}
		for _, f := range q.Filters {
			sqlpred.Walk(f, func(a *sqlpred.Atom) {
				if a.IsStr {
					t.Fatalf("string atom in numeric workload: %s", a)
				}
			})
		}
	}
}

func TestJOBLightShape(t *testing.T) {
	qs := JOBLight(testDB, 11, 20)
	if len(qs) != 20 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if !containsTable(q, "title") {
			t.Fatalf("JOB-light query without title: %v", q.Tables)
		}
		if q.NumJoins() < 1 || q.NumJoins() > 4 {
			t.Fatalf("JOB-light join count %d", q.NumJoins())
		}
		for _, f := range q.Filters {
			sqlpred.Walk(f, func(a *sqlpred.Atom) {
				if a.IsStr {
					t.Fatal("JOB-light must be numeric only")
				}
			})
		}
	}
}

func TestJOBFullHasStrings(t *testing.T) {
	qs := JOBFull(testDB, 13, 15)
	for _, q := range qs {
		if !hasStringAtom(q) {
			t.Fatalf("JOB query without string atom: %s", q.SQL())
		}
		if q.NumJoins() < 2 {
			t.Fatalf("JOB query with %d joins", q.NumJoins())
		}
	}
}

func TestSingleTableStringsShape(t *testing.T) {
	qs := SingleTableStrings(testDB, 17, 20)
	for _, q := range qs {
		if len(q.Tables) != 1 {
			t.Fatalf("single-table query over %v", q.Tables)
		}
		if q.Filters[q.Tables[0]] == nil {
			t.Fatal("single-table query without filter")
		}
	}
}

func TestLikePatternsUseDataSubstrings(t *testing.T) {
	g := NewGenerator(testDB, 19)
	var noteCol *schemaColumn
	for _, c := range testDB.Schema.PredicableColumns("movie_companies") {
		if c.Name == "note" {
			cc := c
			noteCol = &cc
		}
	}
	if noteCol == nil {
		t.Fatal("note column missing")
	}
	found := 0
	for i := 0; i < 200 && found == 0; i++ {
		a := g.randomStringAtom("movie_companies", *noteCol)
		if a != nil && (a.Op == sqlpred.OpLike || a.Op == sqlpred.OpNotLike) {
			found++
			if len(a.StrVal) < 3 {
				t.Fatalf("degenerate pattern %q", a.StrVal)
			}
		}
	}
	if found == 0 {
		t.Fatal("no LIKE atoms generated in 200 tries")
	}
}

func TestParenTokens(t *testing.T) {
	toks := parenTokens("(2006) (USA) (TV)")
	if len(toks) != 3 || toks[0] != "(2006)" || toks[2] != "(TV)" {
		t.Fatalf("parenTokens = %v", toks)
	}
	if parenTokens("no parens") != nil {
		t.Fatal("expected nil for paren-free value")
	}
}

func TestLabeler(t *testing.T) {
	qs := Synthetic(testDB, 23, 20)
	l := &Labeler{Planner: testPl, Engine: testEng, Parallelism: 4}
	samples := l.Label(qs)
	if len(samples) < 15 {
		t.Fatalf("only %d/20 queries labeled", len(samples))
	}
	for _, s := range samples {
		if s.Cost <= 0 {
			t.Fatalf("non-positive cost %g for %s", s.Cost, s.Query.SQL())
		}
		if s.Card < 0 {
			t.Fatalf("negative card for %s", s.Query.SQL())
		}
		if s.Plan.TrueCost != s.Cost {
			t.Fatal("plan annotation inconsistent with sample cost")
		}
	}
}

func TestLabelerDeterministic(t *testing.T) {
	qs := Synthetic(testDB, 29, 10)
	l := &Labeler{Planner: testPl, Engine: testEng}
	a := l.Label(qs)
	b := l.Label(qs)
	if len(a) != len(b) {
		t.Fatal("labeling count nondeterministic")
	}
	for i := range a {
		if a[i].Card != b[i].Card || a[i].Cost != b[i].Cost {
			t.Fatalf("labeling nondeterministic at %d", i)
		}
	}
}

func TestSplit(t *testing.T) {
	samples := make([]*Labeled, 10)
	for i := range samples {
		samples[i] = &Labeled{}
	}
	tr, va := Split(samples, 0.9)
	if len(tr) != 9 || len(va) != 1 {
		t.Fatalf("split = %d/%d", len(tr), len(va))
	}
	tr, va = Split(samples, 1.5)
	if len(tr) != 10 || len(va) != 0 {
		t.Fatal("overflow fraction must clamp")
	}
}
