package workload

import (
	"costest/internal/dataset"
	"costest/internal/query"
	"costest/internal/sqlpred"
)

// Paper workload sizes (Section 6.1). Benches shrink these via parameters.
const (
	SyntheticSize = 5000
	ScaleSize     = 500
	JOBLightSize  = 70
	JOBFullSize   = 113
)

// Synthetic returns the paper's "Synthetic" numeric workload: queries with
// at most 2 joins and numeric predicates only (5000 queries at full scale).
func Synthetic(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	return g.Generate(Spec{
		MinJoins:         0,
		MaxJoins:         2,
		MaxAtomsPerTable: 2,
		StringProb:       0,
		OrProb:           0.15,
		FilterProb:       0.85,
	}, n)
}

// Scale returns the paper's "Scale" workload: 0-4 joins, numeric predicates
// (500 queries at full scale).
func Scale(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	return g.Generate(Spec{
		MinJoins:         0,
		MaxJoins:         4,
		MaxAtomsPerTable: 2,
		StringProb:       0,
		OrProb:           0.15,
		FilterProb:       0.85,
	}, n)
}

// JOBLight returns the JOB-light-style workload: n queries (70 in the paper)
// with 1-4 joins anchored on the title star schema, numeric predicates only
// and pure conjunctions.
func JOBLight(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	out := make([]*query.Query, 0, n)
	spec := Spec{
		MinJoins:         1,
		MaxJoins:         4,
		MaxAtomsPerTable: 2,
		StringProb:       0,
		OrProb:           0,
		FilterProb:       0.8,
		StartTables:      []string{"title"},
	}
	for len(out) < n {
		q := g.Generate(spec, 1)[0]
		if !containsTable(q, "title") {
			continue
		}
		out = append(out, q)
	}
	return out
}

// JOBFull returns the JOB-style test workload: n queries (113 in the paper)
// with multiple joins and complex AND/OR predicates over both numeric and
// string attributes, standing in for the hand-written join-order-benchmark
// queries.
func JOBFull(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	out := make([]*query.Query, 0, n)
	spec := Spec{
		MinJoins:         2,
		MaxJoins:         5,
		MaxAtomsPerTable: 3,
		StringProb:       0.55,
		OrProb:           0.25,
		FilterProb:       0.85,
		StartTables:      []string{"title", "movie_companies", "cast_info", "movie_info_idx"},
	}
	for len(out) < n {
		q := g.Generate(spec, 1)[0]
		if !hasStringAtom(q) {
			continue // JOB queries always carry string predicates
		}
		out = append(out, q)
	}
	return out
}

// TrainingNumeric generates the training workload for the numeric-only
// experiments (Section 6.2).
func TrainingNumeric(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	return g.Generate(Spec{
		MinJoins:         0,
		MaxJoins:         4,
		MaxAtomsPerTable: 2,
		StringProb:       0,
		OrProb:           0.15,
		FilterProb:       0.85,
	}, n)
}

// TrainingStrings generates the multi-join training workload with string
// predicates (Section 6.3.2).
func TrainingStrings(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	return g.Generate(Spec{
		MinJoins:         1,
		MaxJoins:         5,
		MaxAtomsPerTable: 3,
		StringProb:       0.55,
		OrProb:           0.25,
		FilterProb:       0.85,
		StartTables:      []string{"title", "movie_companies", "cast_info", "movie_info_idx"},
	}, n)
}

// SingleTableStrings generates the single-table string-predicate workload of
// Section 6.3.1: no joins, compound predicates with up to 4 boolean
// connectives / 5 expressions over string and numeric columns.
func SingleTableStrings(db *dataset.DB, seed int64, n int) []*query.Query {
	g := NewGenerator(db, seed)
	return g.Generate(Spec{
		MinJoins:         0,
		MaxJoins:         0,
		MaxAtomsPerTable: 5,
		StringProb:       0.6,
		OrProb:           0.3,
		FilterProb:       1.0,
		StartTables:      []string{"movie_companies", "title", "cast_info", "aka_title"},
	}, n)
}

func containsTable(q *query.Query, table string) bool {
	for _, t := range q.Tables {
		if t == table {
			return true
		}
	}
	return false
}

func hasStringAtom(q *query.Query) bool {
	found := false
	for _, f := range q.Filters {
		sqlpred.Walk(f, func(a *sqlpred.Atom) {
			if a.IsStr {
				found = true
			}
		})
	}
	return found
}
