// Package workload generates query workloads the way Section 4.3 of the
// paper describes — random connected table subsets from the PK-FK join
// graph, numeric and string predicates with values drawn from the data,
// AND/OR compound predicates, and MIN/MAX/COUNT projections — plus the named
// evaluation workloads of Section 6.1 (Synthetic, Scale, JOB-light, the
// JOB-style string workload, and the single-table string workload). It also
// labels queries with ground truth by planning and executing them.
package workload

import (
	"math/rand"
	"sort"
	"strings"

	"costest/internal/dataset"
	"costest/internal/plan"
	"costest/internal/query"
	"costest/internal/schema"
	"costest/internal/sqlpred"
)

// Spec controls random query generation.
type Spec struct {
	MinJoins int
	MaxJoins int
	// MaxAtomsPerTable bounds the atomic predicates per filtered table.
	MaxAtomsPerTable int
	// StringProb is the probability a predicate atom targets a string
	// column (0 disables string predicates entirely).
	StringProb float64
	// OrProb is the probability a connective in a compound predicate is OR
	// rather than AND.
	OrProb float64
	// FilterProb is the probability a chosen table receives a filter.
	FilterProb float64
	// StartTables optionally restricts the random walk's starting table.
	StartTables []string
}

// Generator produces random queries over a database.
type Generator struct {
	DB  *dataset.DB
	rng *rand.Rand
}

// NewGenerator returns a seeded generator.
func NewGenerator(db *dataset.DB, seed int64) *Generator {
	return &Generator{DB: db, rng: rand.New(rand.NewSource(seed))}
}

// Generate produces n random queries matching spec.
func (g *Generator) Generate(spec Spec, n int) []*query.Query {
	if spec.MaxAtomsPerTable <= 0 {
		spec.MaxAtomsPerTable = 3
	}
	if spec.FilterProb == 0 {
		spec.FilterProb = 0.8
	}
	out := make([]*query.Query, 0, n)
	for len(out) < n {
		q := g.generateOne(spec)
		if q == nil {
			continue
		}
		if err := q.Validate(); err != nil {
			continue
		}
		out = append(out, q)
	}
	return out
}

func (g *Generator) generateOne(spec Spec) *query.Query {
	nJoins := spec.MinJoins
	if spec.MaxJoins > spec.MinJoins {
		nJoins += g.rng.Intn(spec.MaxJoins - spec.MinJoins + 1)
	}
	tables, joins := g.randomConnectedTables(nJoins+1, spec.StartTables)
	if tables == nil {
		return nil
	}
	q := &query.Query{Tables: tables, Joins: joins, Filters: map[string]sqlpred.Pred{}}

	filtered := 0
	for _, t := range tables {
		if g.rng.Float64() > spec.FilterProb {
			continue
		}
		p := g.randomPredicate(t, spec)
		if p != nil {
			q.Filters[t] = p
			filtered++
		}
	}
	// Always filter at least one table so generated queries are not all
	// full-table joins.
	if filtered == 0 {
		t := tables[g.rng.Intn(len(tables))]
		if p := g.randomPredicate(t, spec); p != nil {
			q.Filters[t] = p
		}
	}
	q.Aggs = g.randomAggs(tables)
	return q
}

// randomConnectedTables walks the join graph to select n connected tables,
// returning them with the spanning joins used.
func (g *Generator) randomConnectedTables(n int, startTables []string) ([]string, []plan.JoinCond) {
	s := g.DB.Schema
	var start string
	if len(startTables) > 0 {
		start = startTables[g.rng.Intn(len(startTables))]
	} else {
		start = s.Tables[g.rng.Intn(len(s.Tables))].Name
	}
	tables := []string{start}
	in := map[string]bool{start: true}
	var joins []plan.JoinCond
	for len(tables) < n {
		// Collect frontier edges.
		type cand struct {
			edge  schema.JoinEdge
			other string
		}
		var cands []cand
		for _, t := range tables {
			for _, e := range s.JoinsOf(t) {
				other := e.FKTable
				if other == t {
					other = e.PKTable
				}
				if !in[other] {
					cands = append(cands, cand{e, other})
				}
			}
		}
		if len(cands) == 0 {
			return nil, nil
		}
		c := cands[g.rng.Intn(len(cands))]
		in[c.other] = true
		tables = append(tables, c.other)
		joins = append(joins, plan.JoinCond{
			Left:  plan.ColRef{Table: c.edge.FKTable, Column: c.edge.FKColumn},
			Right: plan.ColRef{Table: c.edge.PKTable, Column: c.edge.PKColumn},
		})
	}
	return tables, joins
}

// randomPredicate builds a possibly-compound predicate on one table.
func (g *Generator) randomPredicate(table string, spec Spec) sqlpred.Pred {
	cols := g.DB.Schema.PredicableColumns(table)
	var numCols, strCols []schema.Column
	for _, c := range cols {
		if c.Type == schema.IntCol {
			numCols = append(numCols, c)
		} else {
			strCols = append(strCols, c)
		}
	}
	nAtoms := 1 + g.rng.Intn(spec.MaxAtomsPerTable)
	var atoms []sqlpred.Pred
	for i := 0; i < nAtoms; i++ {
		useStr := spec.StringProb > 0 && len(strCols) > 0 && g.rng.Float64() < spec.StringProb
		if !useStr && len(numCols) == 0 {
			// Tables with no numeric predicable columns can only receive
			// string predicates; skip them entirely in numeric-only specs.
			if spec.StringProb == 0 {
				continue
			}
			useStr = len(strCols) > 0
		}
		var a *sqlpred.Atom
		if useStr {
			a = g.randomStringAtom(table, strCols[g.rng.Intn(len(strCols))])
		} else if len(numCols) > 0 {
			a = g.randomNumericAtom(table, numCols[g.rng.Intn(len(numCols))])
		}
		if a != nil {
			atoms = append(atoms, a)
		}
	}
	if len(atoms) == 0 {
		return nil
	}
	return g.combine(atoms, spec.OrProb)
}

// combine folds atoms into a random binary AND/OR tree.
func (g *Generator) combine(atoms []sqlpred.Pred, orProb float64) sqlpred.Pred {
	for len(atoms) > 1 {
		i := g.rng.Intn(len(atoms) - 1)
		kind := sqlpred.And
		if g.rng.Float64() < orProb {
			kind = sqlpred.Or
		}
		merged := &sqlpred.Bool{Kind: kind, Left: atoms[i], Right: atoms[i+1]}
		atoms = append(atoms[:i], append([]sqlpred.Pred{merged}, atoms[i+2:]...)...)
	}
	return atoms[0]
}

// randomNumericAtom picks an operator from the paper's {>,<,=,!=} and a
// value present in the column.
func (g *Generator) randomNumericAtom(table string, col schema.Column) *sqlpred.Atom {
	vals := g.DB.Table(table).IntColumn(col.Name)
	if len(vals) == 0 {
		return nil
	}
	v := vals[g.rng.Intn(len(vals))]
	ops := []sqlpred.Op{sqlpred.OpGt, sqlpred.OpLt, sqlpred.OpEq, sqlpred.OpNe}
	// Low-cardinality columns read more naturally with equality.
	op := ops[g.rng.Intn(len(ops))]
	return &sqlpred.Atom{Table: table, Column: col.Name, Op: op, NumVal: float64(v)}
}

// randomStringAtom picks an operator from {=,!=,LIKE,NOT LIKE,IN} with a
// value (or substring pattern) drawn from the data, following Section 4.3.
func (g *Generator) randomStringAtom(table string, col schema.Column) *sqlpred.Atom {
	vals := g.DB.Table(table).StrColumn(col.Name)
	if len(vals) == 0 {
		return nil
	}
	v := g.nonEmptyString(vals)
	if v == "" {
		return nil
	}
	switch g.rng.Intn(5) {
	case 0:
		return &sqlpred.Atom{Table: table, Column: col.Name, Op: sqlpred.OpEq, StrVal: v, IsStr: true}
	case 1:
		return &sqlpred.Atom{Table: table, Column: col.Name, Op: sqlpred.OpNe, StrVal: v, IsStr: true}
	case 2:
		in := []string{v}
		for k := 0; k < 1+g.rng.Intn(2); k++ {
			if w := g.nonEmptyString(vals); w != "" {
				in = append(in, w)
			}
		}
		sort.Strings(in)
		return &sqlpred.Atom{Table: table, Column: col.Name, Op: sqlpred.OpIn, InVals: dedup(in), IsStr: true}
	case 3:
		return &sqlpred.Atom{Table: table, Column: col.Name, Op: sqlpred.OpLike,
			StrVal: g.likePattern(v), IsStr: true}
	default:
		return &sqlpred.Atom{Table: table, Column: col.Name, Op: sqlpred.OpNotLike,
			StrVal: g.likePattern(v), IsStr: true}
	}
}

func (g *Generator) nonEmptyString(vals []string) string {
	for tries := 0; tries < 8; tries++ {
		v := vals[g.rng.Intn(len(vals))]
		if v != "" {
			return v
		}
	}
	return ""
}

// likePattern derives a pattern from a concrete value: a parenthesized token
// ("%(co-production)%"), a prefix ("Din%"), a suffix, or an inner substring.
func (g *Generator) likePattern(v string) string {
	// Prefer whole parenthesized tokens, the JOB note-predicate family.
	if toks := parenTokens(v); len(toks) > 0 && g.rng.Float64() < 0.6 {
		return "%" + toks[g.rng.Intn(len(toks))] + "%"
	}
	r := []rune(v)
	switch g.rng.Intn(3) {
	case 0: // prefix
		n := 3 + g.rng.Intn(3)
		if n > len(r) {
			n = len(r)
		}
		return string(r[:n]) + "%"
	case 1: // suffix
		n := 3 + g.rng.Intn(3)
		if n > len(r) {
			n = len(r)
		}
		return "%" + string(r[len(r)-n:])
	default: // contains
		n := 2 + g.rng.Intn(3)
		if n >= len(r) {
			return "%" + v + "%"
		}
		start := g.rng.Intn(len(r) - n)
		return "%" + string(r[start:start+n]) + "%"
	}
}

// parenTokens extracts "(...)" groups from a value.
func parenTokens(v string) []string {
	var out []string
	for {
		i := strings.IndexByte(v, '(')
		if i < 0 {
			break
		}
		j := strings.IndexByte(v[i:], ')')
		if j < 0 {
			break
		}
		out = append(out, v[i:i+j+1])
		v = v[i+j+1:]
	}
	return out
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// randomAggs builds the projection: MIN/MAX on numeric columns plus COUNT,
// per Section 4.3 ("select MIN, MAX, COUNT or Non for each attribute").
func (g *Generator) randomAggs(tables []string) []plan.AggSpec {
	var out []plan.AggSpec
	for _, t := range tables {
		for _, c := range g.DB.Schema.PredicableColumns(t) {
			if c.Type != schema.IntCol {
				continue
			}
			switch g.rng.Intn(6) {
			case 0:
				out = append(out, plan.AggSpec{Func: plan.AggMin, Col: plan.ColRef{Table: t, Column: c.Name}})
			case 1:
				out = append(out, plan.AggSpec{Func: plan.AggMax, Col: plan.ColRef{Table: t, Column: c.Name}})
			}
			if len(out) >= 3 {
				return out
			}
		}
	}
	out = append(out, plan.AggSpec{Func: plan.AggCount})
	return out
}
