package workload

import (
	"runtime"
	"sync"

	"costest/internal/exec"
	"costest/internal/plan"
	"costest/internal/planner"
	"costest/internal/query"
)

// Labeled is one training/evaluation sample: the paper's triple
// ⟨physical plan, real cost, real cardinality⟩ (Section 3).
type Labeled struct {
	Query *query.Query
	Plan  *plan.Node // annotated with TrueRows / TrueCost at every node
	Card  float64    // query-level cardinality (topmost non-aggregate node)
	Cost  float64    // total plan cost in executor milliseconds
}

// Labeler turns queries into labeled samples by planning and executing them.
type Labeler struct {
	Planner *planner.Planner
	Engine  *exec.Engine
	// Parallelism bounds concurrent executions (0 = GOMAXPROCS).
	Parallelism int
}

// Label plans and executes qs, dropping queries that fail to plan or whose
// intermediate results exceed the engine limit. The output preserves input
// order.
func (l *Labeler) Label(qs []*query.Query) []*Labeled {
	par := l.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	results := make([]*Labeled, len(qs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q *query.Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			root, err := l.Planner.Plan(q)
			if err != nil {
				return
			}
			if _, err := l.Engine.Run(root); err != nil {
				return
			}
			results[i] = &Labeled{
				Query: q,
				Plan:  root,
				Card:  root.CardinalityNode().TrueRows,
				Cost:  root.TrueCost,
			}
		}(i, q)
	}
	wg.Wait()
	out := make([]*Labeled, 0, len(qs))
	for _, r := range results {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Split partitions samples into train/validation sets by fraction (the paper
// uses 90%/10%).
func Split(samples []*Labeled, trainFrac float64) (train, valid []*Labeled) {
	cut := int(float64(len(samples)) * trainFrac)
	if cut < 0 {
		cut = 0
	}
	if cut > len(samples) {
		cut = len(samples)
	}
	return samples[:cut], samples[cut:]
}
