// Package feature extracts and encodes plan-node features the way
// Section 4.1 of the paper prescribes: physical operation one-hot vectors,
// metadata bitmaps over columns/tables/indexes, predicate trees encoded
// atom-by-atom as ⟨column, operator, operand⟩ vectors (numeric operands
// normalized, string operands embedded), and per-table sample bitmaps. It
// also lays plans out in the level-order form used for batch training
// (Section 4.3).
package feature

import (
	"fmt"

	"costest/internal/plan"
	"costest/internal/sqlpred"
	"costest/internal/stats"
	"costest/internal/strembed"
)

// Encoder turns physical plans into model-ready tensors.
type Encoder struct {
	Cat *stats.Catalog
	Str strembed.StringEncoder
	// UseSampleBitmap toggles the Sample Bitmap feature (the paper's
	// "Sample" ablation column in Table 6).
	UseSampleBitmap bool
}

// NewEncoder builds an encoder over the catalog with the given string
// operand encoder.
func NewEncoder(cat *stats.Catalog, str strembed.StringEncoder, useSampleBitmap bool) *Encoder {
	return &Encoder{Cat: cat, Str: str, UseSampleBitmap: useSampleBitmap}
}

// Feature dimensions.

// OpDim is the operation one-hot width.
func (e *Encoder) OpDim() int { return int(plan.NumNodeTypes) }

// MetaDim is the metadata bitmap width: columns ∪ tables ∪ indexes.
func (e *Encoder) MetaDim() int {
	s := e.Cat.DB.Schema
	return s.NumColumns() + s.NumTables() + s.NumIndexes()
}

// BitmapDim is the sample-bitmap width (0 when disabled).
func (e *Encoder) BitmapDim() int {
	if !e.UseSampleBitmap {
		return 0
	}
	return e.Cat.SampleSize
}

// AtomDim is the width of one predicate-tree node vector:
// [isAnd, isOr | column one-hot | operator one-hot | numeric operand | string embedding].
func (e *Encoder) AtomDim() int {
	return 2 + e.Cat.DB.Schema.NumColumns() + int(sqlpred.NumOps) + 1 + e.Str.Dim()
}

// PredNode is one node of an encoded predicate tree, in DFS preorder.
type PredNode struct {
	IsLeaf      bool
	Bool        sqlpred.BoolKind // for internal nodes
	Vec         []float64        // AtomDim features
	Left, Right int              // indices into EncodedPred.Nodes; -1 for leaves
}

// EncodedPred is a predicate tree with per-node feature vectors. Nodes[0] is
// the root when non-empty.
type EncodedPred struct {
	Nodes []PredNode
}

// Empty reports whether there is no predicate.
func (p *EncodedPred) Empty() bool { return len(p.Nodes) == 0 }

// EncodedNode is one encoded plan node.
type EncodedNode struct {
	Op     []float64 // operation one-hot
	Meta   []float64 // metadata bitmap
	Bitmap []float64 // sample bitmap (nil when disabled/absent)
	Pred   EncodedPred
	Left   int // child indices into EncodedPlan.Nodes; -1 when absent
	Right  int

	// Sig is the subtree signature, keying the representation memory pool.
	Sig string

	// Supervision targets copied from the executed plan.
	TrueRows float64
	TrueCost float64
}

// EncodedPlan is a fully encoded plan tree.
type EncodedPlan struct {
	Nodes []EncodedNode
	Root  int
	// Levels lists node indices grouped by height above the leaves
	// (Levels[0] = leaves), the width-first layout of Section 4.3.
	Levels [][]int32
	// Query-level targets: Cost is the root's cumulative cost, Card the
	// output of the topmost non-aggregate node.
	Cost float64
	Card float64
	// CardNode indexes the node defining Card.
	CardNode int
	// Signature mirrors plan.Node.Signature for memory-pool keying.
	Signature string
}

// Encode converts an executed plan into tensors. The plan must carry
// TrueRows/TrueCost annotations if the sample will be used for training.
func (e *Encoder) Encode(root *plan.Node) (*EncodedPlan, error) {
	ep := &EncodedPlan{Root: 0, Signature: root.Signature()}
	cardNode := root.CardinalityNode()
	if _, err := e.encodeNode(root, ep, cardNode); err != nil {
		return nil, err
	}
	ep.Cost = root.TrueCost
	ep.Card = cardNode.TrueRows
	ep.buildLevels()
	return ep, nil
}

func (e *Encoder) encodeNode(n *plan.Node, ep *EncodedPlan, cardNode *plan.Node) (int, error) {
	idx := len(ep.Nodes)
	ep.Nodes = append(ep.Nodes, EncodedNode{Left: -1, Right: -1})
	if n == cardNode {
		ep.CardNode = idx
	}

	enc := EncodedNode{Left: -1, Right: -1, TrueRows: n.TrueRows, TrueCost: n.TrueCost,
		Sig: n.Signature()}
	enc.Op = e.encodeOp(n)
	enc.Meta = e.encodeMeta(n)
	pred, err := e.encodePred(nodePredicate(n))
	if err != nil {
		return 0, err
	}
	enc.Pred = pred
	if e.UseSampleBitmap && n.Type.IsScan() {
		if p := scanPredicate(n); p != nil {
			bm, err := e.Cat.SampleBitmap(n.Table, p)
			if err != nil {
				return 0, err
			}
			enc.Bitmap = bm
		}
	}

	if n.Left != nil {
		l, err := e.encodeNode(n.Left, ep, cardNode)
		if err != nil {
			return 0, err
		}
		enc.Left = l
	}
	if n.Right != nil {
		r, err := e.encodeNode(n.Right, ep, cardNode)
		if err != nil {
			return 0, err
		}
		enc.Right = r
	}
	ep.Nodes[idx] = enc
	return idx, nil
}

func (e *Encoder) encodeOp(n *plan.Node) []float64 {
	v := make([]float64, e.OpDim())
	v[int(n.Type)] = 1
	return v
}

// encodeMeta ORs the one-hot vectors of every column, table and index the
// node touches.
func (e *Encoder) encodeMeta(n *plan.Node) []float64 {
	s := e.Cat.DB.Schema
	v := make([]float64, e.MetaDim())
	setCol := func(table, col string) {
		if id := s.ColumnID(table, col); id >= 0 {
			v[id] = 1
		}
	}
	setTable := func(t string) {
		if id := s.TableID(t); id >= 0 {
			v[s.NumColumns()+id] = 1
		}
	}
	setIndex := func(name string) {
		if id := s.IndexID(name); id >= 0 {
			v[s.NumColumns()+s.NumTables()+id] = 1
		}
	}
	if n.Table != "" {
		setTable(n.Table)
	}
	if n.Index != "" {
		setIndex(n.Index)
	}
	sqlpred.Walk(n.Filter, func(a *sqlpred.Atom) { setCol(a.Table, a.Column) })
	if n.IndexCond != nil {
		setCol(n.IndexCond.Table, n.IndexCond.Column)
	}
	for _, jc := range []*plan.JoinCond{n.JoinCond, n.ParamJoin} {
		if jc != nil {
			setCol(jc.Left.Table, jc.Left.Column)
			setCol(jc.Right.Table, jc.Right.Column)
			setTable(jc.Left.Table)
			setTable(jc.Right.Table)
		}
	}
	for _, k := range n.SortKeys {
		setCol(k.Table, k.Column)
		setTable(k.Table)
	}
	for _, a := range n.Aggs {
		if a.Col.Table != "" {
			setCol(a.Col.Table, a.Col.Column)
			setTable(a.Col.Table)
		}
	}
	return v
}

// nodePredicate collects the predicate material at a node: scan filters
// (with the index condition folded in) and join conditions.
func nodePredicate(n *plan.Node) sqlpred.Pred {
	switch {
	case n.Type.IsScan():
		return scanPredicate(n)
	case n.JoinCond != nil:
		return joinAtom(n.JoinCond)
	default:
		return nil
	}
}

func scanPredicate(n *plan.Node) sqlpred.Pred {
	p := n.Filter
	if n.IndexCond != nil {
		p = sqlpred.AndAll(n.IndexCond, p)
	}
	return p
}

// joinAtom represents an equi-join condition as a pseudo-atom: both columns
// are set in the column one-hot and the operand is empty.
func joinAtom(jc *plan.JoinCond) *sqlpred.Atom {
	return &sqlpred.Atom{
		Table:  jc.Left.Table,
		Column: jc.Left.Column,
		Op:     sqlpred.OpEq,
		// The right side is carried via joinRight in encodeAtomVec.
		StrVal: joinRightMarker + jc.Right.Table + "." + jc.Right.Column,
	}
}

// joinRightMarker tags the StrVal of a join pseudo-atom; the encoder decodes
// it into a second column bit instead of a string operand.
const joinRightMarker = "\x00join:"

// encodePred converts a predicate tree into an EncodedPred.
func (e *Encoder) encodePred(p sqlpred.Pred) (EncodedPred, error) {
	var ep EncodedPred
	if p == nil {
		return ep, nil
	}
	if _, err := e.encodePredNode(p, &ep); err != nil {
		return EncodedPred{}, err
	}
	return ep, nil
}

func (e *Encoder) encodePredNode(p sqlpred.Pred, ep *EncodedPred) (int, error) {
	idx := len(ep.Nodes)
	ep.Nodes = append(ep.Nodes, PredNode{Left: -1, Right: -1})
	switch n := p.(type) {
	case *sqlpred.Atom:
		vec, err := e.encodeAtomVec(n)
		if err != nil {
			return 0, err
		}
		ep.Nodes[idx] = PredNode{IsLeaf: true, Vec: vec, Left: -1, Right: -1}
	case *sqlpred.Bool:
		l, err := e.encodePredNode(n.Left, ep)
		if err != nil {
			return 0, err
		}
		r, err := e.encodePredNode(n.Right, ep)
		if err != nil {
			return 0, err
		}
		vec := make([]float64, e.AtomDim())
		if n.Kind == sqlpred.And {
			vec[0] = 1
		} else {
			vec[1] = 1
		}
		ep.Nodes[idx] = PredNode{Bool: n.Kind, Vec: vec, Left: l, Right: r}
	default:
		return 0, fmt.Errorf("feature: unknown predicate node %T", p)
	}
	return idx, nil
}

// encodeAtomVec lays out one atom:
// [isAnd=0, isOr=0 | column one-hot | op one-hot | numeric | string embed].
func (e *Encoder) encodeAtomVec(a *sqlpred.Atom) ([]float64, error) {
	s := e.Cat.DB.Schema
	v := make([]float64, e.AtomDim())
	colBase := 2
	opBase := colBase + s.NumColumns()
	numBase := opBase + int(sqlpred.NumOps)
	strBase := numBase + 1

	if id := s.ColumnID(a.Table, a.Column); id >= 0 {
		v[colBase+id] = 1
	} else {
		return nil, fmt.Errorf("feature: unknown column %s.%s", a.Table, a.Column)
	}
	v[opBase+int(a.Op)] = 1

	// Join pseudo-atom: second column bit, no operand.
	if len(a.StrVal) > len(joinRightMarker) && a.StrVal[:len(joinRightMarker)] == joinRightMarker {
		ref := a.StrVal[len(joinRightMarker):]
		for i := 0; i < len(ref); i++ {
			if ref[i] == '.' {
				if id := s.ColumnID(ref[:i], ref[i+1:]); id >= 0 {
					v[colBase+id] = 1
				}
				break
			}
		}
		return v, nil
	}

	switch {
	case a.Op == sqlpred.OpIn:
		copy(v[strBase:], e.embedMany(a.InVals))
	case a.IsStr:
		copy(v[strBase:], e.Str.Embed(a.StrVal))
	default:
		v[numBase] = e.Cat.NormalizeNumeric(a.Table, a.Column, a.NumVal)
	}
	return v, nil
}

func (e *Encoder) embedMany(vals []string) []float64 {
	out := make([]float64, e.Str.Dim())
	if len(vals) == 0 {
		return out
	}
	for _, v := range vals {
		vec := e.Str.Embed(v)
		for i := range out {
			out[i] += vec[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vals))
	}
	return out
}

// buildLevels groups nodes by height above the leaves so batch training can
// run whole levels at once (Section 4.3's width-first encoding).
func (ep *EncodedPlan) buildLevels() {
	heights := make([]int, len(ep.Nodes))
	var height func(i int) int
	height = func(i int) int {
		if i < 0 {
			return -1
		}
		if heights[i] > 0 {
			return heights[i]
		}
		h := 0
		n := ep.Nodes[i]
		if l := height(n.Left); l+1 > h {
			h = l + 1
		}
		if r := height(n.Right); r+1 > h {
			h = r + 1
		}
		heights[i] = h
		return h
	}
	maxH := 0
	for i := range ep.Nodes {
		if h := height(i); h > maxH {
			maxH = h
		}
	}
	ep.Levels = make([][]int32, maxH+1)
	for i := range ep.Nodes {
		h := heights[i]
		ep.Levels[h] = append(ep.Levels[h], int32(i))
	}
}

// Depth returns the number of levels.
func (ep *EncodedPlan) Depth() int { return len(ep.Levels) }
