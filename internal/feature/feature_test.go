package feature

import (
	"testing"

	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/pg"
	"costest/internal/plan"
	"costest/internal/planner"
	"costest/internal/sqlpred"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
)

func newEncoder() *Encoder {
	return NewEncoder(testCat, strembed.HashEmbedder{DimN: 16}, true)
}

func executedPlan(t *testing.T) *plan.Node {
	t.Helper()
	f := &sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2005}
	note := &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpLike,
		StrVal: "%(co-production)%", IsStr: true}
	root := &plan.Node{Type: plan.Aggregate,
		Aggs: []plan.AggSpec{{Func: plan.AggCount}},
		Left: &plan.Node{Type: plan.HashJoin,
			JoinCond: &plan.JoinCond{
				Left:  plan.ColRef{Table: "movie_companies", Column: "movie_id"},
				Right: plan.ColRef{Table: "title", Column: "id"},
			},
			Left:  &plan.Node{Type: plan.SeqScan, Table: "movie_companies", Filter: note},
			Right: &plan.Node{Type: plan.SeqScan, Table: "title", Filter: f},
		},
	}
	if _, err := testEng.Run(root); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestEncodePlanShape(t *testing.T) {
	e := newEncoder()
	ep, err := e.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Nodes) != 4 {
		t.Fatalf("encoded %d nodes, want 4", len(ep.Nodes))
	}
	root := ep.Nodes[ep.Root]
	if root.Op[int(plan.Aggregate)] != 1 {
		t.Fatal("root op one-hot wrong")
	}
	// DFS preorder: root=0, join=1, left scan=2, right scan=3.
	if root.Left != 1 || root.Right != -1 {
		t.Fatalf("root children = (%d,%d)", root.Left, root.Right)
	}
	join := ep.Nodes[1]
	if join.Left != 2 || join.Right != 3 {
		t.Fatalf("join children = (%d,%d)", join.Left, join.Right)
	}
	if ep.Cost <= 0 || ep.Card <= 0 {
		t.Fatalf("targets cost=%g card=%g", ep.Cost, ep.Card)
	}
	if ep.CardNode != 1 {
		t.Fatalf("CardNode = %d, want the join", ep.CardNode)
	}
}

func TestOneHotVectorsValid(t *testing.T) {
	e := newEncoder()
	ep, err := e.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ep.Nodes {
		ones := 0
		for _, v := range n.Op {
			if v != 0 && v != 1 {
				t.Fatalf("node %d op vector not 0/1", i)
			}
			if v == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("node %d op one-hot has %d ones", i, ones)
		}
		if len(n.Meta) != e.MetaDim() {
			t.Fatalf("node %d meta dim %d, want %d", i, len(n.Meta), e.MetaDim())
		}
	}
}

func TestMetaBitsSet(t *testing.T) {
	e := newEncoder()
	ep, err := e.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	s := testDB.Schema
	// The title scan (node 3) must set title's table bit and
	// production_year's column bit.
	scanNode := ep.Nodes[3]
	colBit := s.ColumnID("title", "production_year")
	tableBit := s.NumColumns() + s.TableID("title")
	if scanNode.Meta[colBit] != 1 {
		t.Error("production_year column bit unset")
	}
	if scanNode.Meta[tableBit] != 1 {
		t.Error("title table bit unset")
	}
	// The join node must set both join columns.
	join := ep.Nodes[1]
	if join.Meta[s.ColumnID("movie_companies", "movie_id")] != 1 ||
		join.Meta[s.ColumnID("title", "id")] != 1 {
		t.Error("join column bits unset")
	}
}

func TestSampleBitmapOnlyOnScans(t *testing.T) {
	e := newEncoder()
	ep, err := e.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if ep.Nodes[0].Bitmap != nil || ep.Nodes[1].Bitmap != nil {
		t.Error("non-scan nodes must not carry bitmaps")
	}
	for _, i := range []int{2, 3} {
		if len(ep.Nodes[i].Bitmap) != testCat.SampleSize {
			t.Errorf("scan node %d bitmap len %d", i, len(ep.Nodes[i].Bitmap))
		}
	}
	// Disabled bitmaps.
	e2 := NewEncoder(testCat, strembed.HashEmbedder{DimN: 16}, false)
	ep2, err := e2.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ep2.Nodes {
		if n.Bitmap != nil {
			t.Errorf("node %d has bitmap with feature disabled", i)
		}
	}
	if e2.BitmapDim() != 0 {
		t.Error("BitmapDim should be 0 when disabled")
	}
}

func TestPredicateEncoding(t *testing.T) {
	e := newEncoder()
	p := sqlpred.AndAll(
		&sqlpred.Atom{Table: "title", Column: "production_year", Op: sqlpred.OpGt, NumVal: 2000},
		sqlpred.OrAll(
			&sqlpred.Atom{Table: "title", Column: "kind_id", Op: sqlpred.OpEq, NumVal: 1},
			&sqlpred.Atom{Table: "title", Column: "episode_nr", Op: sqlpred.OpLt, NumVal: 5},
		),
	)
	ep, err := e.encodePred(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Nodes) != 5 {
		t.Fatalf("pred nodes = %d, want 5", len(ep.Nodes))
	}
	root := ep.Nodes[0]
	if root.IsLeaf || root.Bool != sqlpred.And || root.Vec[0] != 1 {
		t.Fatal("root must be AND with isAnd marker")
	}
	or := ep.Nodes[root.Right]
	if or.IsLeaf || or.Bool != sqlpred.Or || or.Vec[1] != 1 {
		t.Fatal("right child must be OR with isOr marker")
	}
	leaf := ep.Nodes[root.Left]
	if !leaf.IsLeaf {
		t.Fatal("left child must be the year atom")
	}
	// Numeric operand is normalized into [0,1].
	numPos := 2 + testDB.Schema.NumColumns() + int(sqlpred.NumOps)
	if leaf.Vec[numPos] < 0 || leaf.Vec[numPos] > 1 {
		t.Fatalf("normalized operand = %g", leaf.Vec[numPos])
	}
	if leaf.Vec[numPos] == 0 {
		t.Error("year 2000 should normalize above 0")
	}
}

func TestStringOperandEmbedded(t *testing.T) {
	e := newEncoder()
	a := &sqlpred.Atom{Table: "movie_companies", Column: "note", Op: sqlpred.OpLike,
		StrVal: "%(presents)%", IsStr: true}
	vec, err := e.encodeAtomVec(a)
	if err != nil {
		t.Fatal(err)
	}
	strBase := 2 + testDB.Schema.NumColumns() + int(sqlpred.NumOps) + 1
	var sum float64
	for _, v := range vec[strBase:] {
		sum += v
	}
	if sum == 0 {
		t.Fatal("string operand embedding all zeros")
	}
}

func TestINOperandAveraged(t *testing.T) {
	e := newEncoder()
	a := &sqlpred.Atom{Table: "company_type", Column: "kind", Op: sqlpred.OpIn,
		InVals: []string{"distributors", "production companies"}, IsStr: true}
	vec, err := e.encodeAtomVec(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != e.AtomDim() {
		t.Fatalf("atom dim %d, want %d", len(vec), e.AtomDim())
	}
}

func TestUnknownColumnErrors(t *testing.T) {
	e := newEncoder()
	a := &sqlpred.Atom{Table: "title", Column: "nope", Op: sqlpred.OpEq, NumVal: 1}
	if _, err := e.encodeAtomVec(a); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestLevelsBottomUp(t *testing.T) {
	e := newEncoder()
	ep, err := e.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if ep.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", ep.Depth())
	}
	// Level 0 holds both scans; level 1 the join; level 2 the aggregate.
	if len(ep.Levels[0]) != 2 || len(ep.Levels[1]) != 1 || len(ep.Levels[2]) != 1 {
		t.Fatalf("levels = %v", ep.Levels)
	}
	// Children always live in lower levels than parents.
	levelOf := make(map[int32]int)
	for l, nodes := range ep.Levels {
		for _, n := range nodes {
			levelOf[n] = l
		}
	}
	for i, n := range ep.Nodes {
		for _, c := range []int{n.Left, n.Right} {
			if c >= 0 && levelOf[int32(c)] >= levelOf[int32(i)] {
				t.Fatalf("child %d at level %d >= parent %d at %d",
					c, levelOf[int32(c)], i, levelOf[int32(i)])
			}
		}
	}
}

func TestEncodeRealWorkloadPlans(t *testing.T) {
	qs := workload.JOBFull(testDB, 31, 5)
	lab := &workload.Labeler{Planner: testPl, Engine: testEng}
	samples := lab.Label(qs)
	if len(samples) == 0 {
		t.Skip("no labelable JOB queries at this scale")
	}
	e := newEncoder()
	for _, s := range samples {
		ep, err := e.Encode(s.Plan)
		if err != nil {
			t.Fatalf("encoding %s: %v", s.Query.SQL(), err)
		}
		if len(ep.Nodes) != s.Plan.Count() {
			t.Fatalf("node count mismatch: %d vs %d", len(ep.Nodes), s.Plan.Count())
		}
		if ep.Cost != s.Cost || ep.Card != s.Card {
			t.Fatal("targets not copied from plan annotations")
		}
	}
}

func TestZeroEncoderIntegration(t *testing.T) {
	e := NewEncoder(testCat, strembed.ZeroEncoder{}, true)
	base := 2 + testDB.Schema.NumColumns() + int(sqlpred.NumOps) + 1
	if e.AtomDim() != base {
		t.Fatalf("AtomDim = %d, want %d", e.AtomDim(), base)
	}
	ep, err := e.Encode(executedPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Nodes) != 4 {
		t.Fatal("encode with zero string dims failed")
	}
}
