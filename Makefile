# Developer entry points. `make check` is the tier-1 gate: build, vet,
# gofmt cleanliness, the project's own static-analysis suite (costlint),
# and the full test suite.

GO ?= go
PKGS := ./...
BENCH_OUT ?= BENCH_INFERENCE.json
BENCH_SERVE_OUT ?= BENCH_SERVE.json

.PHONY: all build vet fmt-check lint static-tools test test-fault test-fuzz test-replica check bench bench-json bench-serve clean

all: check

build:
	$(GO) build $(PKGS)

vet:
	$(GO) vet $(PKGS)

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The project's static-analysis gate: faultsite, noalloc, canonicaldot and
# atomichygiene over the whole module (see internal/analysis). Whole-module
# runs also flag registered-but-never-injected fault sites.
lint:
	$(GO) run ./cmd/costlint $(PKGS)

# Third-party analyzers, gated on availability: this container has no
# network, so staticcheck/govulncheck run only where they are installed
# (CI installs them; see .github/workflows/ci.yml).
static-tools:
	./scripts/static_tools.sh

test:
	$(GO) test $(PKGS)

# Fault-tolerance suite under the race detector: the injector itself, the
# crash-safe checkpoint I/O, the circuit breaker / degraded serving path,
# the daemon's supervisor + chaos acceptance scenario, and the replication
# failover suite (primary kill → lease-lapse promotion → zombie fencing,
# plus heartbeat liveness, token auth and slow-follower eviction).
test-fault:
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -race -count=1 ./internal/core/ -run 'Checkpoint'
	$(GO) test -race -count=1 ./internal/serve/ -run 'Breaker|RetryAfter|DegradedSurface'
	$(GO) test -race -count=1 ./cmd/costestd/
	$(GO) test -race -count=1 ./internal/replica/ -run 'Failover|Heartbeat|TokenAuth|Eviction|BackoffDelay'

# Short coverage-guided fuzzing over every network- and disk-facing parser:
# the replication frame reader and delta payload applier, the /estimate wire
# plan decoder, and the checkpoint loaders. Each target's seed corpus also
# runs as a plain test in `make test`; this target additionally explores.
# FUZZTIME tunes the per-target budget (CI uses the default).
FUZZTIME ?= 15s
test-fuzz:
	$(GO) test ./internal/replica/ -run '^$$' -fuzz '^FuzzFrameReader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/replica/ -run '^$$' -fuzz '^FuzzApplyModelPayload$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve/ -run '^$$' -fuzz '^FuzzWirePlanDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzLoadModel$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz '^FuzzModelLoad$$' -fuzztime $(FUZZTIME)

# The replication conformance suite under the race detector — the
# bit-identity acceptance gate for the scale-out streaming runtime.
test-replica:
	$(GO) test -race -count=1 ./internal/replica/

check: build vet fmt-check lint test

# Hot-path microbenchmarks: the per-plan forward runtime, the batch
# serving/training runtime (sequential TrainEpoch/TrainEpochBatched and the
# data-parallel BenchmarkTrainEpochParallel shard variants), the memory pool
# read path, the hot-swap serving runtime (full-copy BenchmarkPublish vs
# BenchmarkPublishDelta, continuous-loop BenchmarkFitParallel), and the
# tensor kernels underneath them.
bench:
	$(GO) test ./internal/core/ -run xxx \
		-bench 'BenchmarkForwardSingle|BenchmarkForwardPooled|BenchmarkPoolGetParallel|BenchmarkEstimateBatch|BenchmarkTrainEpoch|BenchmarkTrainEpochParallel|BenchmarkPublish|BenchmarkServer|BenchmarkFitParallel' \
		-benchmem -benchtime=1s
	$(GO) test ./internal/tensor/ -run xxx -bench . -benchmem -benchtime=1s

# Regenerate $(BENCH_OUT) from a fresh benchmark run (see scripts/bench_json.sh).
bench-json:
	./scripts/bench_json.sh $(BENCH_OUT)

# Regenerate $(BENCH_SERVE_OUT): the networked-daemon scheduler benchmarks
# (throughput, p99 latency, mean coalesced batch size).
bench-serve:
	./scripts/bench_json.sh $(BENCH_SERVE_OUT) serve

clean:
	$(GO) clean $(PKGS)
