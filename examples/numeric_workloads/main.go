// Numeric workloads: reproduce the Section-6.2 comparison — PostgreSQL
// histograms vs MSCN vs the tree model — on the JOB-light, Synthetic and
// Scale workloads with numeric predicates only (Tables 7 and 8 of the
// paper), at a reduced scale that runs in about a minute.
//
//	go run ./examples/numeric_workloads
package main

import (
	"fmt"
	"log"
	"time"

	"costest/internal/experiments"
)

func main() {
	log.SetFlags(0)
	cfg := experiments.Small()
	cfg.Scale = 0.03
	cfg.TrainNumeric = 300
	cfg.TestSynthetic = 80
	cfg.TestScale = 60
	cfg.TestJOBLight = 30
	cfg.Epochs = 8

	start := time.Now()
	env := experiments.NewEnv(cfg)
	log.Printf("environment ready: %d rows (%.1fs)", env.DB.TotalRows(), time.Since(start).Seconds())

	res, err := env.RunNumeric()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.ReportNumeric(res))
	log.Printf("done in %.1fs", time.Since(start).Seconds())
}
