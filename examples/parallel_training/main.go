// Parallel training: the data-parallel runtime end to end. A ParallelTrainer
// shards every minibatch across worker sessions with private gradient
// ParamSets and reduces them deterministically into one Adam step — the same
// schedule as the sequential batched trainer, so losses agree to
// floating-point reassociation and the worker count cannot change the
// trained bits.
//
//	go run ./examples/parallel_training
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Substrate and training data (see examples/quickstart for the
	// step-by-step version).
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	cat := stats.Collect(db, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	eng := exec.NewEngine(db)
	pl := planner.New(pg.New(cat), db.Schema)
	labeler := &workload.Labeler{Planner: pl, Engine: eng}
	labeled := labeler.Label(workload.TrainingNumeric(db, 7, 240))
	enc := feature.NewEncoder(cat, strembed.ZeroEncoder{}, true)
	var eps []*feature.EncodedPlan
	for _, s := range labeled {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			log.Fatal(err)
		}
		eps = append(eps, ep)
	}
	fmt.Printf("corpus: %d labeled plans, %d CPU(s)\n", len(eps), runtime.GOMAXPROCS(0))

	// 2. Two identically seeded models: one trained by the sequential
	// batched runtime, one by the data-parallel runtime (2 shards). Both
	// consume the same shuffle stream, so they walk the same minibatches.
	cfg := core.TestConfig()
	mSeq := core.New(cfg, enc)
	mPar := core.New(cfg, enc)
	seq := core.NewTrainer(mSeq)
	par := core.NewParallelTrainer(mPar, 2)
	defer par.Close()
	seq.FitNormalizers(eps)
	par.FitNormalizers(eps)
	par.Warmup(eps) // size worker arenas: epochs after this are 0 allocs/op

	const epochs = 4
	t0 := time.Now()
	var lossSeq float64
	for e := 0; e < epochs; e++ {
		lossSeq = seq.TrainEpochBatched(eps, 16, 1)
	}
	dSeq := time.Since(t0)
	t0 = time.Now()
	var lossPar float64
	for e := 0; e < epochs; e++ {
		lossPar = par.TrainEpochParallel(eps, 16, 0)
	}
	dPar := time.Since(t0)
	fmt.Printf("sequential: %d epochs in %v (final loss %.6f)\n", epochs, dSeq.Round(time.Millisecond), lossSeq)
	fmt.Printf("parallel:   %d epochs in %v (final loss %.6f, %d shards)\n",
		epochs, dPar.Round(time.Millisecond), lossPar, par.Shards())
	fmt.Printf("loss delta: %.2e (floating-point reassociation across shard boundaries only)\n",
		math.Abs(lossSeq-lossPar))

	// 3. The determinism contract: the workers knob caps concurrency, never
	// the result. Train two more models with the same shard count but
	// different worker caps and compare every weight bit for bit.
	mA := core.New(cfg, enc)
	mB := core.New(cfg, enc)
	ptA := core.NewParallelTrainer(mA, 2)
	ptB := core.NewParallelTrainer(mB, 2)
	defer ptA.Close()
	defer ptB.Close()
	ptA.FitNormalizers(eps)
	ptB.FitNormalizers(eps)
	for e := 0; e < 2; e++ {
		ptA.TrainEpochParallel(eps, 16, 1) // shards run one at a time
		ptB.TrainEpochParallel(eps, 16, 2) // shards run concurrently
	}
	identical := true
	pa, pb := mA.PS.Params(), mB.PS.Params()
	for p := range pa {
		for i := range pa[p].Value {
			if pa[p].Value[i] != pb[p].Value[i] {
				identical = false
			}
		}
	}
	fmt.Printf("workers=1 vs workers=2 weights bit-identical: %v\n", identical)

	// 4. The parallel trainer composes with hot-swap serving: publish
	// between epochs while the serving side keeps reading snapshots.
	srv := core.NewServer(mPar, core.NewBoundedMemoryPool(4096))
	snap := par.Publish(srv)
	costQ, cardQ := snap.Model().ValidationError(eps)
	fmt.Printf("published v%d from the parallel trainer (train-set q-error: cost %.2f, card %.2f)\n",
		snap.Version(), costQ, cardQ)

	// 5. The continuous train-and-serve loop: ParallelTrainer.Fit drives
	// shuffled epochs with per-epoch validation (mirroring Trainer.Fit) and
	// auto-publishes into the server, gated on validation improvement — the
	// server only ever serves the best-validated weights. Publishes go
	// through the delta path: only the parameters the optimizer touched
	// since the target snapshot buffers were last synced are copied
	// (double-buffered rotation). Note the gate applies to epoch publishes
	// only: setting EveryBatches > 0 additionally delta-publishes after
	// every optimizer step, ungated — choose it when serving wants the
	// freshest weights rather than the best-validated ones.
	train, valid := eps[:len(eps)*8/10], eps[len(eps)*8/10:]
	mLoop := core.New(cfg, enc)
	loop := core.NewParallelTrainer(mLoop, 2)
	defer loop.Close()
	loopSrv := core.NewServer(mLoop, core.NewBoundedMemoryPool(4096))
	loop.AutoPublish(loopSrv, core.AutoPublishOptions{
		Gated: true, // publish only on validation improvement
		Delta: true,
	})
	hist := loop.Fit(train, valid, 4, 16, 0, func(st core.EpochStats) {
		tag := "held back (validation did not improve)"
		if st.Published != 0 {
			tag = fmt.Sprintf("published v%d (delta copied %d params)",
				st.Published, loopSrv.LastDeltaCopied())
		}
		fmt.Printf("  epoch %d: loss %.5f, valid q-error cost %.2f card %.2f — %s\n",
			st.Epoch, st.TrainLoss, st.ValidCost, st.ValidCard, tag)
	})
	fmt.Printf("continuous loop: %d epochs, server at v%d serving the best-validated weights\n",
		len(hist), loopSrv.Version())

	// Anything served during the loop came from an immutable snapshot; the
	// served snapshot is the last one the gate admitted.
	c, d, v := loopSrv.Estimate(valid[0])
	fmt.Printf("serving v%d: cost %.1f, card %.1f\n", v, c, d)
}
