// Batch inference: demonstrate the width-first batched evaluation of
// Section 4.3 and the Representation Memory Pool of Section 3 — the two
// mechanisms behind the paper's Table 12 efficiency results.
//
//	go run ./examples/batch_inference
package main

import (
	"fmt"
	"log"
	"time"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

func main() {
	log.SetFlags(0)
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	cat := stats.Collect(db, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	eng := exec.NewEngine(db)
	pl := planner.New(pg.New(cat), db.Schema)
	lab := &workload.Labeler{Planner: pl, Engine: eng}

	// A trained (here: freshly initialized) model is enough to measure the
	// inference mechanics; weights do not affect latency.
	enc := feature.NewEncoder(cat, strembed.HashEmbedder{DimN: 16}, true)
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.EstHidden = 32, 16
	cfg.OpEmbed, cfg.MetaEmbed, cfg.BitmapEmbed, cfg.PredEmbed = 16, 16, 16, 16
	model := core.New(cfg, enc)

	// 113 JOB-style plans, as in Table 12.
	qs := workload.JOBFull(db, 11, 113)
	samples := lab.Label(qs)
	var eps []*feature.EncodedPlan
	for _, s := range samples {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			log.Fatal(err)
		}
		eps = append(eps, ep)
	}
	fmt.Printf("evaluating %d JOB-style plans\n\n", len(eps))

	// One-by-one recursive evaluation.
	t0 := time.Now()
	for _, ep := range eps {
		model.Estimate(ep)
	}
	seq := time.Since(t0)

	// Width-first batched evaluation across the whole set.
	t0 = time.Now()
	model.EstimateBatch(eps, 0)
	batch := time.Since(t0)

	fmt.Printf("sequential: %7.3f ms/query\n", ms(seq, len(eps)))
	fmt.Printf("batched:    %7.3f ms/query  (%.1fx speedup)\n",
		ms(batch, len(eps)), float64(seq)/float64(batch))

	// Memory pool: the optimizer asks about overlapping sub-plans; shared
	// sub-plans are evaluated once.
	pool := core.NewMemoryPool()
	t0 = time.Now()
	for _, ep := range eps {
		model.EstimateWithPool(ep, pool)
	}
	first := time.Since(t0)
	t0 = time.Now()
	for _, ep := range eps {
		model.EstimateWithPool(ep, pool)
	}
	second := time.Since(t0)
	fmt.Printf("\nmemory pool: %d sub-plans cached, hit rate %.0f%%\n", pool.Len(), pool.HitRate()*100)
	fmt.Printf("cold pass:  %7.3f ms/query\n", ms(first, len(eps)))
	fmt.Printf("warm pass:  %7.3f ms/query  (%.1fx speedup from the pool)\n",
		ms(second, len(eps)), float64(first)/float64(second))

	// Steady-state serving configuration: one reusable BatchSession (all
	// arenas high-water sized, zero allocations per call once warm) plus the
	// memory pool, so repeated batches skip every already-seen subtree.
	sess := core.NewBatchSession(model)
	sess.EstimateBatchWithPool(eps, pool, 0) // warm the arenas
	const rounds = 10
	t0 = time.Now()
	for i := 0; i < rounds; i++ {
		sess.EstimateBatchWithPool(eps, pool, 0)
	}
	warmBatch := time.Since(t0) / rounds
	fmt.Printf("\nwarm pooled batch session: %7.3f ms/query (0 allocs/op once warm)\n",
		ms(warmBatch, len(eps)))
}

func ms(d time.Duration, n int) float64 {
	return float64(d.Microseconds()) / 1000 / float64(n)
}
