// Serving: the hot-swap runtime end to end. A Trainer retrains the live
// model in place and publishes immutable snapshots while concurrent
// goroutines keep serving pooled estimates — the long-lived optimizer
// process of the paper's online workflow (Section 3), with atomic weight
// publication and O(1) generation-tagged pool invalidation.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/nn"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Substrate and training data (see examples/quickstart for the
	// step-by-step version).
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	cat := stats.Collect(db, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	eng := exec.NewEngine(db)
	pl := planner.New(pg.New(cat), db.Schema)
	labeler := &workload.Labeler{Planner: pl, Engine: eng}
	labeled := labeler.Label(workload.TrainingNumeric(db, 42, 240))
	enc := feature.NewEncoder(cat, strembed.ZeroEncoder{}, true)
	var eps []*feature.EncodedPlan
	for _, s := range labeled {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			log.Fatal(err)
		}
		eps = append(eps, ep)
	}
	fmt.Printf("corpus: %d labeled plans\n", len(eps))

	// 2. Model, trainer, and the serving runtime: a Server owns the current
	// ModelSnapshot behind an atomic pointer plus a generation-tagged
	// representation memory pool.
	cfg := core.TestConfig()
	model := core.New(cfg, enc)
	trainer := core.NewTrainer(model)
	trainer.FitNormalizers(eps)
	srv := core.NewServer(model, core.NewBoundedMemoryPool(4096))
	// Pre-warming replays the hottest served plans through each newly
	// published snapshot in the background, so the post-swap stale transient
	// is paid off the request path.
	srv.EnablePrewarm(16)
	fmt.Printf("serving snapshot v%d (%d params)\n", srv.Version(), model.NumParams())

	// 3. Serve and retrain concurrently. The trainer mutates the live model
	// freely; serving goroutines only ever touch immutable snapshots, so no
	// estimate observes torn weights, and each publish invalidates the pool
	// in O(1) by advancing its generation.
	var served atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; ; k++ {
				if _, _, v := srv.Estimate(eps[(w*17+k)%len(eps)]); v == 0 {
					panic("unversioned estimate")
				}
				batch, _ := srv.EstimateBatch(eps[:12], 2)
				served.Add(int64(len(batch)) + 1)
				select {
				case <-done:
					return
				default:
				}
			}
		}(w)
	}

	for epoch := 0; epoch < 6; epoch++ {
		loss := trainer.TrainEpochBatched(eps, 16, 0)
		snap := trainer.Publish(srv)
		costQ, cardQ := snap.Model().ValidationError(eps)
		fmt.Printf("epoch %d: loss %.3f -> published v%d (train-set q-error: cost %.2f, card %.2f)\n",
			epoch, loss, snap.Version(), costQ, cardQ)
	}
	close(done)
	wg.Wait()

	// 4. The swap transient is visible in the pool statistics: stale lookups
	// are generation mismatches right after a publish, decaying as the new
	// generation repopulates the pool.
	pool := srv.Pool()
	fmt.Printf("\nserved %d estimates across %d snapshots while retraining\n", served.Load(), srv.Version())
	fmt.Printf("pool: %d entries resident, hit rate %.1f%%, stale rate %.1f%%\n",
		pool.Len(), pool.HitRate()*100, pool.StaleRate()*100)

	// Adaptive sizing: Advise inspects the windowed hit/stale rates and
	// occupancy and recommends a bound; SetBound applies it live.
	advice := pool.Advise()
	fmt.Printf("pool advice: bound %d -> %d (%s)\n", advice.Bound, advice.Recommended, advice.Reason)
	if advice.Recommended != advice.Bound {
		pool.SetBound(advice.Recommended)
		fmt.Printf("pool rebounded to %d entries\n", pool.Bound())
	}

	// 5. Snapshots are immutable: anyone still holding v-final can replay it
	// forever, bit for bit, regardless of what training does next.
	final := srv.Snapshot()
	c1, d1 := final.Model().Estimate(eps[0])
	trainer.TrainEpochBatched(eps, 16, 0) // keep training past the last publish
	c2, d2 := final.Model().Estimate(eps[0])
	fmt.Printf("snapshot v%d replay stable across further training: %v (cost %.2f, card %.0f, q-error vs truth %.2f)\n",
		final.Version(), c1 == c2 && d1 == d2, c1, d1, nn.QError(d1, eps[0].Card))
}
