// String predicates: walk the Section-5 pipeline step by step — workload
// string collection, candidate rule generation (Tables 4-5), greedy budgeted
// selection (Algorithm 1), skip-gram training over per-tuple sentences, and
// trie-backed online lookup of unseen LIKE patterns.
//
//	go run ./examples/string_predicates
package main

import (
	"fmt"

	"costest/internal/dataset"
	"costest/internal/strembed"
	"costest/internal/tensor"
)

func main() {
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.05})

	// The workload's string literals (S_W), scoped to their columns: the
	// note-pattern family from the paper's running JOB example.
	ws := []strembed.WorkloadString{
		{Table: "movie_companies", Column: "note", S: "(co-production)", Kind: strembed.MatchContains},
		{Table: "movie_companies", Column: "note", S: "(presents)", Kind: strembed.MatchContains},
		{Table: "movie_companies", Column: "note", S: "(as ", Kind: strembed.MatchContains},
		{Table: "movie_companies", Column: "note", S: "(TV)", Kind: strembed.MatchContains},
		{Table: "company_type", Column: "kind", S: "production companies", Kind: strembed.MatchExact},
		{Table: "info_type", Column: "info", S: "top 250 rank", Kind: strembed.MatchExact},
		{Table: "aka_title", Column: "title", S: "Ka", Kind: strembed.MatchPrefix},
	}

	// Candidate rules for one (query string, tuple value) pair, as in
	// Table 4 of the paper.
	notes := db.Table("movie_companies").StrColumn("note")
	var example string
	for _, n := range notes {
		if len(n) > 6 && n == "(co-production)" {
			example = n
			break
		}
	}
	if example != "" {
		cands := strembed.CandidateRules(ws[0], example)
		fmt.Printf("candidate rules for %q in %q (%d total, first 5):\n", ws[0].S, example, len(cands))
		for i, r := range cands {
			if i == 5 {
				break
			}
			fmt.Printf("  %s\n", r)
		}
	}

	// Full build: rule selection + skip-gram + tries.
	cfg := strembed.DefaultConfig()
	cfg.Dim = 24
	cfg.MaxValuesPerColumn = 4000
	emb := strembed.Build(db, ws, cfg)
	fmt.Printf("\nselected %d rules; dictionary holds %d substrings\n", len(emb.Rules), emb.DictSize)
	for i, r := range emb.Rules {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  rule: %s\n", r)
	}

	// Online lookups: known patterns, unseen-but-prefixed patterns, OOV.
	patterns := []string{
		"%(co-production)%",
		"%(presents)%",
		"top 250 rank",
		"Ka%", // prefix search resolved by the trie
		"%(TV)%",
		"zzzz-unknown", // out of vocabulary
	}
	fmt.Println("\nonline pattern lookups (vector L2 norms; 0 = unknown):")
	for _, p := range patterns {
		v := emb.Embed(p)
		fmt.Printf("  %-22s |v| = %.3f\n", p, tensor.Dot(v, v))
	}

	// Co-occurrence: notes that appear in similar company contexts embed
	// closer than unrelated literals.
	hash := strembed.HashEmbedder{DimN: 24}
	fmt.Printf("\nhash-bitmap baseline for comparison: |%q| bits = %v...\n",
		"(co-production)", hash.Embed("(co-production)")[:8])
}
