// Quickstart: train the tree-structured cost estimator end-to-end on a tiny
// synthetic IMDB instance and estimate an unseen query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Substrate: synthetic IMDB + statistics + executor + planner.
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.03})
	cat := stats.Collect(db, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	eng := exec.NewEngine(db)
	pl := planner.New(pg.New(cat), db.Schema)
	fmt.Printf("database: %d rows across %d tables\n", db.TotalRows(), len(db.Tables))

	// 2. Training data: generated queries, planned and executed for ground
	// truth (the paper's ⟨plan, cost, cardinality⟩ triples).
	queries := workload.TrainingNumeric(db, 42, 300)
	labeler := &workload.Labeler{Planner: pl, Engine: eng}
	labeled := labeler.Label(queries)
	train, valid := workload.Split(labeled, 0.9)
	fmt.Printf("training triples: %d (train %d / valid %d)\n", len(labeled), len(train), len(valid))

	// 3. Feature encoding: operation one-hots, metadata bitmaps, predicate
	// trees and sample bitmaps (Section 4.1).
	enc := feature.NewEncoder(cat, strembed.ZeroEncoder{}, true)
	encode := func(ss []*workload.Labeled) []*feature.EncodedPlan {
		var out []*feature.EncodedPlan
		for _, s := range ss {
			ep, err := enc.Encode(s.Plan)
			if err != nil {
				log.Fatal(err)
			}
			out = append(out, ep)
		}
		return out
	}

	// 4. The model: min-max-pooled predicates, tree-LSTM representation,
	// multitask cost+cardinality heads, q-error loss (Section 4.2-4.3).
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.EstHidden = 32, 16
	cfg.OpEmbed, cfg.MetaEmbed, cfg.BitmapEmbed, cfg.PredEmbed = 16, 16, 16, 16
	cfg.LearnRate = 0.003
	model := core.New(cfg, enc)
	trainer := core.NewTrainer(model)
	trainer.Fit(encode(train), encode(valid), 8, 16, func(s core.EpochStats) {
		fmt.Printf("  epoch %d: loss %.2f, valid cost q-error %.2f, valid card q-error %.2f\n",
			s.Epoch, s.TrainLoss, s.ValidCost, s.ValidCard)
	})

	// 5. Estimate an unseen query.
	test := workload.JOBLight(db, 777, 1)[0]
	fmt.Printf("\ntest query: %s\n", test.SQL())
	root, err := pl.Plan(test)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Run(root); err != nil {
		log.Fatal(err)
	}
	ep, err := enc.Encode(root)
	if err != nil {
		log.Fatal(err)
	}
	cost, card := model.Estimate(ep)
	fmt.Printf("estimated cost %.2f ms (real %.2f), cardinality %.0f (real %.0f)\n",
		cost, root.TrueCost, card, root.CardinalityNode().TrueRows)
}
