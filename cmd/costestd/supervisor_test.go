package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/serve"
)

// waitFor polls cond for up to 10s — chaos timing is nondeterministic by
// design, assertions wait for the state instead of sleeping for it.
func waitFor(tb testing.TB, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			tb.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSupervisorPanicRecoveryBackoffThenPublish: injected retrain panics are
// contained (backoff restarts, counted), and once the fault clears the loop
// recovers and publishes — all while concurrent /estimate load is served
// without interruption.
func TestSupervisorPanicRecoveryBackoffThenPublish(t *testing.T) {
	plans, eps := testCorpus(t, 501, 24)
	srv, tr, sched, svc := testStack(t, eps, serve.SchedulerConfig{QueueDepth: 64, MaxBatch: 16})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})

	sup := newSupervisor(srv, tr, eps, 1)
	sup.Interval = time.Millisecond
	sup.GateSlack = -1 // gate is the next test's subject
	sup.BackoffBase = 2 * time.Millisecond
	sup.BackoffMax = 10 * time.Millisecond
	sup.logf = t.Logf

	// The first two cycles panic inside the trainer; the rest succeed.
	fault.Enable(fault.New(3).Add(fault.Rule{Site: "daemon.retrain", Kind: fault.Panic, Count: 2}))
	defer fault.Disable()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); sup.run(ctx) }()

	// Concurrent serving load for the supervisor's whole arc.
	var wg sync.WaitGroup
	stopLoad := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				body, _ := json.Marshal(map[string]any{"plan": serve.EncodeWire(plans[(w+i)%len(plans)])})
				resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("load worker %d: %v", w, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("load worker %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}

	waitFor(t, "2 contained panics", func() bool { return sup.panics.Load() == 2 })
	waitFor(t, "post-panic publish", func() bool { return sup.publishes.Load() >= 1 })
	close(stopLoad)
	wg.Wait()
	cancel()
	<-done

	if got := sup.failures.Load(); got != 2 {
		t.Fatalf("failures=%d, want exactly the 2 injected panics", got)
	}
	st := sup.stats().(supervisorStats)
	if st.Panics != 2 || st.Publishes < 1 {
		t.Fatalf("stats %+v: want 2 panics and >=1 publish", st)
	}
	if sst := sched.Stats(); sst.Admitted != sst.Served+sst.Expired+sst.Failed {
		t.Fatalf("drain contract under supervisor churn: admitted %d != served %d + expired %d + failed %d",
			sst.Admitted, sst.Served, sst.Expired, sst.Failed)
	}
}

// TestSupervisorGateRejectsRegression: a candidate whose held-out Q-error
// regresses past the slack never reaches the serving path — the served
// version stays put and the skip is counted. Disabling the gate publishes
// the same candidate.
func TestSupervisorGateRejectsRegression(t *testing.T) {
	_, eps := testCorpus(t, 502, 24)
	srv, tr, sched, _ := testStack(t, eps, serve.SchedulerConfig{QueueDepth: 16, MaxBatch: 8})
	t.Cleanup(sched.Close)

	sup := newSupervisor(srv, tr, eps, 1)
	sup.GateSlack = 0.10
	sup.logf = t.Logf

	// Force the baseline to an unbeatable Q-error: every candidate is a
	// regression (real Q-errors are >= 1 by construction).
	sup.pubQBits.Store(math.Float64bits(1e-9))
	v0 := srv.Version()
	if err := sup.cycle(); err != nil {
		t.Fatalf("gated cycle errored: %v", err)
	}
	if got := srv.Version(); got != v0 {
		t.Fatalf("gated candidate was published: v%d -> v%d", v0, got)
	}
	if sup.gateSkipped.Load() != 1 || sup.publishes.Load() != 0 {
		t.Fatalf("skipped=%d publishes=%d, want 1/0", sup.gateSkipped.Load(), sup.publishes.Load())
	}

	// Same candidate, gate disabled: publishes and advances the baseline.
	sup.GateSlack = -1
	if err := sup.cycle(); err != nil {
		t.Fatalf("ungated cycle errored: %v", err)
	}
	if got := srv.Version(); got == v0 {
		t.Fatal("ungated cycle did not publish")
	}
	if sup.publishes.Load() != 1 {
		t.Fatalf("publishes=%d, want 1", sup.publishes.Load())
	}
	if q := sup.pubQ(); q == 1e-9 {
		t.Fatal("publish did not advance the gate baseline")
	}
}

// TestSupervisorCheckpointsPublishedModel: each due publish saves a
// crash-safe checkpoint that cold-loads to the exact published weights, and
// an injected checkpoint write failure is absorbed (counted, last-good
// intact) rather than fatal.
func TestSupervisorCheckpointsPublishedModel(t *testing.T) {
	_, eps := testCorpus(t, 503, 24)
	srv, tr, sched, _ := testStack(t, eps, serve.SchedulerConfig{QueueDepth: 16, MaxBatch: 8})
	t.Cleanup(sched.Close)

	sup := newSupervisor(srv, tr, eps, 1)
	sup.GateSlack = -1
	sup.CheckpointPath = filepath.Join(t.TempDir(), "model.ckpt")
	sup.logf = t.Logf

	if err := sup.cycle(); err != nil {
		t.Fatal(err)
	}
	if sup.checkpoints.Load() != 1 {
		t.Fatalf("checkpoints=%d, want 1", sup.checkpoints.Load())
	}
	m, _, err := core.LoadCheckpoint(sup.CheckpointPath, testEnc)
	if err != nil {
		t.Fatalf("published checkpoint unloadable: %v", err)
	}
	snap := srv.AcquireSnapshot()
	defer srv.ReleaseSnapshot(snap)
	for i, ep := range eps[:4] {
		c1, d1 := snap.Model().Estimate(ep)
		c2, d2 := m.Estimate(ep)
		if c1 != c2 || d1 != d2 {
			t.Fatalf("plan %d: checkpoint diverges from published snapshot", i)
		}
	}

	// Injected write failure: absorbed, counted, last-good intact.
	fault.Enable(fault.New(5).Add(fault.Rule{Site: "checkpoint.write", Kind: fault.Error, Count: 1}))
	err = sup.cycle()
	fault.Disable()
	if err != nil {
		t.Fatalf("checkpoint write fault escaped the cycle: %v", err)
	}
	if sup.ckptErrors.Load() != 1 {
		t.Fatalf("checkpoint_errors=%d, want 1", sup.ckptErrors.Load())
	}
	if _, _, err := core.LoadCheckpoint(sup.CheckpointPath, testEnc); err != nil {
		t.Fatalf("failed save corrupted the last-good checkpoint: %v", err)
	}
}
