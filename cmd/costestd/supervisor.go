package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/feature"
)

// supervisor owns the daemon's continuous retrain loop and keeps it from
// hurting the serving path. Three protections stack:
//
//   - Containment: each retrain cycle runs under panic recovery, through the
//     "daemon.retrain" fault hook. A crashing cycle costs that cycle, never
//     the process; repeated failures restart with exponential backoff plus
//     jitter (capped), so a persistently broken trainer degrades to a quiet
//     periodic retry instead of a crash loop.
//   - Gated publish: a freshly trained model is validated on a held-out
//     slice before PublishDelta. A cost Q-error regression beyond GateSlack
//     of the last published model's is skipped and logged — serving keeps
//     the better model; training continues and may recover by the next
//     cycle. This is the rollback: the bad weights simply never reach the
//     serving path.
//   - Crash-safe checkpoints: every CheckpointEvery-th published model is
//     saved through core.SaveCheckpoint (write-fsync-rename, .prev kept), so
//     a kill at any instant leaves a cold-loadable last-good file.
type supervisor struct {
	srv     *core.Server
	trainer *core.Trainer
	train   []*feature.EncodedPlan
	valid   []*feature.EncodedPlan

	// Interval between cycle starts; failures wait nextBackoff instead.
	Interval time.Duration
	// Workers is the training worker count per epoch (0 = GOMAXPROCS).
	Workers int
	// GateSlack is the allowed relative validation regression: a candidate
	// publishes only while candQ <= pubQ*(1+GateSlack). Negative disables
	// the gate (every cycle publishes).
	GateSlack float64
	// CheckpointPath, when set, receives crash-safe checkpoints of published
	// models; CheckpointEvery <= 1 checkpoints every publish, N every Nth.
	CheckpointPath  string
	CheckpointEvery int
	// BackoffBase/BackoffMax bound the failure backoff (defaulted in run).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// onPublish, when set, observes every published snapshot version (test
	// hook; chaos tests pin expected versions with it).
	onPublish func(version uint64)
	logf      func(format string, args ...any)
	rng       *rand.Rand

	// pubQBits is the published model's validation cost Q-error (float64
	// bits — /statsz reads it concurrently with the loop writing it).
	pubQBits atomic.Uint64

	cycles, panics, publishes atomic.Uint64
	gateSkipped, failures     atomic.Uint64
	checkpoints, ckptErrors   atomic.Uint64
	backoffNanos              atomic.Int64
}

// newSupervisor builds a supervisor over the trainer's model, splitting eps
// 4:1 into train/held-out validation and anchoring the publish gate at the
// current model's validation error (the model being served at startup).
func newSupervisor(srv *core.Server, trainer *core.Trainer, eps []*feature.EncodedPlan, seed int64) *supervisor {
	cut := len(eps) * 4 / 5
	if cut < 1 {
		cut = len(eps)
	}
	sv := &supervisor{
		srv:     srv,
		trainer: trainer,
		train:   eps[:cut],
		valid:   eps[cut:],
		logf:    func(format string, args ...any) {},
		rng:     rand.New(rand.NewSource(seed)),
	}
	vc, _ := trainer.M.ValidationError(sv.valid)
	sv.pubQBits.Store(math.Float64bits(vc))
	return sv
}

// pubQ returns the publish gate's current baseline Q-error.
func (sv *supervisor) pubQ() float64 { return math.Float64frombits(sv.pubQBits.Load()) }

// run is the supervision loop: retrain cycles at Interval while healthy,
// exponential backoff with jitter after failures, until ctx ends. It never
// returns early — a supervisor outlives every injected fault.
func (sv *supervisor) run(ctx ctxDone) {
	if sv.BackoffBase <= 0 {
		sv.BackoffBase = 500 * time.Millisecond
	}
	if sv.BackoffMax <= 0 {
		sv.BackoffMax = 30 * time.Second
	}
	var backoff time.Duration
	timer := time.NewTimer(sv.Interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if err := sv.cycle(); err != nil {
			sv.failures.Add(1)
			backoff = sv.nextBackoff(backoff)
			sv.backoffNanos.Store(int64(backoff))
			sv.logf("costestd: retrain cycle failed: %v (restarting in %v)", err, backoff.Round(time.Millisecond))
			timer.Reset(backoff)
			continue
		}
		if backoff > 0 {
			sv.logf("costestd: retrain recovered after backoff")
		}
		backoff = 0
		sv.backoffNanos.Store(0)
		timer.Reset(sv.Interval)
	}
}

// cycle runs one contained retrain attempt: train an epoch, validate, gate,
// publish, checkpoint. Panics become errors — the caller's backoff handles
// them like any other failure.
func (sv *supervisor) cycle() (err error) {
	defer func() {
		if p := recover(); p != nil {
			sv.panics.Add(1)
			err = fmt.Errorf("retrain panic: %v", p)
		}
	}()
	sv.cycles.Add(1)
	if err := fault.Point(fault.SiteDaemonRetrain); err != nil {
		return err
	}
	loss := sv.trainer.TrainEpochBatched(sv.train, 16, sv.Workers)

	// Publish gate: validate the candidate on the held-out slice against the
	// published baseline before it can reach the serving path.
	candQ, _ := sv.trainer.M.ValidationError(sv.valid)
	if pub := sv.pubQ(); sv.GateSlack >= 0 && pub > 0 && candQ > pub*(1+sv.GateSlack) {
		sv.gateSkipped.Add(1)
		sv.logf("costestd: publish gated: candidate q-error %.3f vs published %.3f (slack %.0f%%), keeping served model",
			candQ, pub, sv.GateSlack*100)
		return nil
	}

	snap := sv.trainer.PublishDelta(sv.srv)
	n := sv.publishes.Add(1)
	sv.pubQBits.Store(math.Float64bits(candQ))
	if sv.onPublish != nil {
		sv.onPublish(snap.Version())
	}
	sv.logf("costestd: retrained (loss %.3f, valid q-error %.3f) -> published v%d", loss, candQ, snap.Version())

	if sv.CheckpointPath != "" && sv.due(n) {
		sv.checkpoint()
	}
	return nil
}

// due reports whether the nth publish is a checkpoint cadence hit.
func (sv *supervisor) due(n uint64) bool {
	every := uint64(1)
	if sv.CheckpointEvery > 1 {
		every = uint64(sv.CheckpointEvery)
	}
	return n%every == 0
}

// checkpoint saves the just-published model crash-safely. The snapshot the
// publish produced is delta-backed and recyclable, so the save reads from a
// freshly acquired reference — the exact published weights, protected from
// recycling for the duration. A failed save is counted and logged, never
// fatal: the previous checkpoint is still intact by SaveCheckpoint's
// contract.
func (sv *supervisor) checkpoint() {
	ck := sv.srv.AcquireSnapshot()
	err := core.SaveCheckpoint(sv.CheckpointPath, ck.Model())
	sv.srv.ReleaseSnapshot(ck)
	if err != nil {
		sv.ckptErrors.Add(1)
		sv.logf("costestd: checkpoint failed (last-good kept): %v", err)
		return
	}
	sv.checkpoints.Add(1)
	sv.logf("costestd: checkpointed v%d to %s", ck.Version(), sv.CheckpointPath)
}

// nextBackoff doubles the restart delay within [BackoffBase, BackoffMax] and
// jitters it into [next/2, next) so a fleet of daemons tripped by the same
// fault does not retrain in lockstep.
func (sv *supervisor) nextBackoff(cur time.Duration) time.Duration {
	next := cur * 2
	if next < sv.BackoffBase {
		next = sv.BackoffBase
	}
	if next > sv.BackoffMax {
		next = sv.BackoffMax
	}
	half := next / 2
	return half + time.Duration(sv.rng.Int63n(int64(half)+1))
}

// supervisorStats is the /statsz "supervisor" block.
type supervisorStats struct {
	Cycles           uint64  `json:"cycles"`
	Failures         uint64  `json:"failures"`
	Panics           uint64  `json:"panics"`
	Publishes        uint64  `json:"publishes"`
	GateSkipped      uint64  `json:"gate_skipped"`
	Checkpoints      uint64  `json:"checkpoints"`
	CheckpointErrors uint64  `json:"checkpoint_errors"`
	PublishedQError  float64 `json:"published_q_error"`
	BackoffMS        int64   `json:"backoff_ms"`
}

// stats snapshots the supervisor's counters (the Service.SupervisorStats
// hook).
func (sv *supervisor) stats() any {
	return supervisorStats{
		Cycles:           sv.cycles.Load(),
		Failures:         sv.failures.Load(),
		Panics:           sv.panics.Load(),
		Publishes:        sv.publishes.Load(),
		GateSkipped:      sv.gateSkipped.Load(),
		Checkpoints:      sv.checkpoints.Load(),
		CheckpointErrors: sv.ckptErrors.Load(),
		PublishedQError:  sv.pubQ(),
		BackoffMS:        sv.backoffNanos.Load() / int64(time.Millisecond),
	}
}

// ctxDone is the slice of context.Context the loop needs (tests pass bare
// cancellation contexts; naming the dependency keeps run honest about using
// nothing else).
type ctxDone interface{ Done() <-chan struct{} }
