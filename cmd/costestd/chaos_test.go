package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"costest/internal/core"
	"costest/internal/fault"
	"costest/internal/serve"
)

// chaosEstimate is one recorded 200 response: which plan was asked, what
// came back on the wire.
type chaosEstimate struct {
	plan     int
	cost     float64
	card     float64
	version  uint64
	degraded bool
}

// wireResp mirrors the /estimate response shape for decoding.
type wireResp struct {
	Estimates []struct {
		Cost     float64 `json:"cost"`
		Card     float64 `json:"card"`
		Version  uint64  `json:"version"`
		Degraded bool    `json:"degraded"`
	} `json:"estimates"`
}

// TestChaosAcceptance is the PR's acceptance scenario: a full serving stack
// with the supervisor retraining, under concurrent HTTP load, with injected
// retrain panics, checkpoint I/O errors and batch-estimate failures — all at
// once. The daemon must never crash, answer every admitted request, serve
// every 200 bit-identically to the snapshot version it reports (degraded
// answers included), recover the breaker through half-open probing, and end
// with a cold-loadable checkpoint.
func TestChaosAcceptance(t *testing.T) {
	plans, eps := testCorpus(t, 601, 24)
	srv, tr, sched, svc := testStack(t, eps, serve.SchedulerConfig{
		QueueDepth:      128,
		MaxBatch:        8,
		BreakerFailures: 2,
		BreakerCooldown: -1, // probe every post-trip batch: fast recovery
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// Pin every snapshot version that could answer a request, so each 200
	// can be replayed against the exact model that served it. The supervisor
	// is the only publisher, so acquiring right after a publish pins the
	// published version.
	var pinMu sync.Mutex
	pinned := map[uint64]*core.ModelSnapshot{}
	pin := func() {
		pinMu.Lock()
		defer pinMu.Unlock()
		snap := srv.AcquireSnapshot()
		if _, dup := pinned[snap.Version()]; dup {
			srv.ReleaseSnapshot(snap)
			return
		}
		pinned[snap.Version()] = snap
	}
	pin() // the initial model
	t.Cleanup(func() {
		for _, snap := range pinned {
			srv.ReleaseSnapshot(snap)
		}
	})

	sup := newSupervisor(srv, tr, eps, 1)
	sup.Interval = 2 * time.Millisecond
	sup.GateSlack = -1 // every cycle publishes: maximum churn under the load
	sup.CheckpointPath = filepath.Join(t.TempDir(), "model.ckpt")
	sup.BackoffBase = 2 * time.Millisecond
	sup.BackoffMax = 10 * time.Millisecond
	sup.logf = t.Logf
	sup.onPublish = func(version uint64) { pin() }

	// The fault plan, all sites at once: the first two retrain cycles panic,
	// the first checkpoint write fails, and batches 6-9 of the primary
	// serving path error — enough consecutive failures to trip the breaker
	// (threshold 2) with an established last-known-good, then two failed
	// probes, then recovery.
	fault.Enable(fault.New(99).
		Add(fault.Rule{Site: "daemon.retrain", Kind: fault.Panic, Count: 2}).
		Add(fault.Rule{Site: "checkpoint.write", Kind: fault.Error, Count: 1}).
		Add(fault.Rule{Site: "serve.batch", Kind: fault.Error, After: 5, Count: 4}))
	defer fault.Disable()

	ctx, cancel := context.WithCancel(context.Background())
	supDone := make(chan struct{})
	go func() { defer close(supDone); sup.run(ctx) }()

	// Concurrent HTTP load for the whole arc. Admission rejections (503) are
	// legal under chaos; anything else non-200 is not.
	var recMu sync.Mutex
	var recorded []chaosEstimate
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				idx := (w*7 + i) % len(plans)
				body, _ := json.Marshal(map[string]any{"plan": serve.EncodeWire(plans[idx])})
				resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("loader %d: %v", w, err)
					return
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					// Batch failures before the breaker trips surface as 500s
					// with the injected error — allowed; anything else is not.
					if resp.StatusCode == http.StatusInternalServerError &&
						bytes.Contains(raw, []byte("injected error")) {
						continue
					}
					t.Errorf("loader %d: status %d: %s", w, resp.StatusCode, raw)
					return
				}
				var wr wireResp
				err = json.NewDecoder(resp.Body).Decode(&wr)
				resp.Body.Close()
				if err != nil || len(wr.Estimates) != 1 {
					t.Errorf("loader %d: bad 200 body: %v", w, err)
					return
				}
				e := wr.Estimates[0]
				recMu.Lock()
				recorded = append(recorded, chaosEstimate{
					plan: idx, cost: e.Cost, card: e.Card, version: e.Version, degraded: e.Degraded,
				})
				recMu.Unlock()
			}
		}(w)
	}

	// Wait out the whole arc: panics contained, breaker tripped and probed
	// back closed, checkpoint write failed once and then succeeded.
	waitFor(t, "2 contained retrain panics", func() bool { return sup.panics.Load() == 2 })
	waitFor(t, "1 absorbed checkpoint error", func() bool { return sup.ckptErrors.Load() >= 1 })
	waitFor(t, "a good checkpoint", func() bool { return sup.checkpoints.Load() >= 1 })
	waitFor(t, "breaker trip", func() bool { return sched.Stats().BreakerTrips >= 1 })
	waitFor(t, "breaker recovery via probing", func() bool {
		st := sched.Stats()
		return st.BreakerProbes >= 1 && !st.BreakerOpen
	})
	waitFor(t, "post-chaos publishes", func() bool { return sup.publishes.Load() >= 2 })

	close(stopLoad)
	wg.Wait()
	cancel()
	<-supDone
	sched.Close()

	// Admitted means answered, through every injected failure.
	st := sched.Stats()
	if st.Admitted != st.Served+st.Expired+st.Failed {
		t.Fatalf("drain contract: admitted %d != served %d + expired %d + failed %d",
			st.Admitted, st.Served, st.Expired, st.Failed)
	}
	if st.Degraded < 1 {
		t.Fatalf("no request was served degraded (trips=%d probes=%d)", st.BreakerTrips, st.BreakerProbes)
	}

	// Every 200 replays bit-identically against the snapshot version it
	// reported — the serving invariant holds across publishes, the breaker's
	// fallback path, and panic recovery.
	degraded := 0
	for _, r := range recorded {
		snap := pinned[r.version]
		if snap == nil {
			t.Fatalf("response reported unpinned version %d", r.version)
		}
		cost, card := snap.Model().Estimate(eps[r.plan])
		if cost != r.cost || card != r.card {
			t.Fatalf("plan %d v%d (degraded=%v): wire (%g,%g) != replay (%g,%g)",
				r.plan, r.version, r.degraded, r.cost, r.card, cost, card)
		}
		if r.degraded {
			degraded++
		}
	}
	if len(recorded) == 0 {
		t.Fatal("no 200 responses recorded under load")
	}
	t.Logf("chaos: %d replayed responses (%d degraded), %d versions, stats %+v",
		len(recorded), degraded, len(pinned), st)

	// The surviving checkpoint cold-loads to the exact weights of some
	// pinned published version.
	m, src, err := core.LoadCheckpoint(sup.CheckpointPath, testEnc)
	if err != nil {
		t.Fatalf("final checkpoint unloadable: %v", err)
	}
	match := false
	for v, snap := range pinned {
		c1, d1 := snap.Model().Estimate(eps[0])
		c2, d2 := m.Estimate(eps[0])
		if c1 == c2 && d1 == d2 {
			t.Logf("chaos: checkpoint %s matches published v%d", src, v)
			match = true
			break
		}
	}
	if !match {
		t.Fatal("checkpoint matches no pinned published version")
	}
}
