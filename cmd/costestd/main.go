// Command costestd is the networked estimator daemon: a long-lived process
// serving learned cost/cardinality estimates over HTTP, fronting the
// hot-swap serving runtime (internal/core) with the micro-batching
// scheduler and admission control of internal/serve.
//
// Startup either cold-loads a self-describing checkpoint (-checkpoint) or
// trains a model on the synthetic IMDB workload, then serves:
//
//	POST /estimate  {"plan": {...}}         one estimate (see GET /samplez)
//	GET  /healthz                           process liveness
//	GET  /readyz                            model loaded and admitting
//	GET  /statsz                            scheduler/pool/drain statistics
//	GET  /samplez                           a valid example /estimate body
//
// The daemon is self-healing. Background retraining (-retrain) runs under a
// supervisor: panicking cycles restart with exponential backoff, regressed
// models are gated before publish (-gate-slack), and published models are
// checkpointed crash-safely (-checkpoint, -checkpoint-every) — a kill at any
// instant leaves a cold-loadable file. The serving path degrades instead of
// failing: consecutive batch failures trip a circuit breaker
// (-breaker-failures) into answering from the last-known-good snapshot,
// with half-open probes (-breaker-cooldown) to recover. Chaos tests drive
// all of it with -faults (deterministic, seedable fault injection).
//
// The daemon scales out by replication (internal/replica): a primary
// started with -replicate-listen streams every published model — dirty
// parameters only, full snapshots for bootstrap and catch-up — to follower
// daemons started with -follow, which serve bit-identical estimates and
// report generation lag in /statsz. Followers train nothing locally and
// turn ready once the first replicated model is applied.
//
// For high availability, daemons instead form a cluster with -peers: each
// member follows the live primary through the ordered peer list, renewing a
// primary-liveness lease on every authenticated frame (heartbeats keep idle
// connections fed, read/write deadlines catch dead peers). A promotable
// member (-promote-rank 0, -lease) whose lease lapses promotes itself: it
// seals the last applied generation, boots a parallel trainer over its
// mirror model (paced by -retrain; 0 keeps the promoted member serve-only),
// and publishes from its own -replicate-listen under the next epoch while
// the surviving members re-dial through the peer list onto it.
// Every frame carries the publisher's epoch; frames from a deposed primary's
// stale epoch are fenced — rejected by followers and answered with a fencing
// frame that silences the zombie. -replicate-token adds a constant-time
// pre-shared token check to every replication handshake.
//
// SIGTERM or SIGINT triggers a graceful drain: readiness flips, admission
// stops (503 + Retry-After), in-flight batches finish, the HTTP server
// shuts down, and the process exits 0.
//
//	go run ./cmd/costestd -addr :8080 -retrain 5s -checkpoint /var/lib/costest/model.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/fault"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/planner"
	"costest/internal/replica"
	"costest/internal/serve"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		scale      = flag.Float64("scale", 0.03, "synthetic IMDB scale factor")
		seed       = flag.Int64("seed", 42, "workload seed")
		queries    = flag.Int("queries", 240, "training workload size")
		epochs     = flag.Int("epochs", 20, "training epoch budget")
		shards     = flag.Int("shards", 1, "data-parallel trainer shards")
		patience   = flag.Int("patience", 3, "early-stopping patience (0 disables)")
		checkpoint = flag.String("checkpoint", "", "checkpoint path: cold-load if present, else train and save")
		queueDepth = flag.Int("queue", 256, "admission queue depth")
		maxBatch   = flag.Int("max-batch", 64, "max requests coalesced per model call")
		window     = flag.Duration("batch-window", 2*time.Millisecond, "coalescing wait after a batch's first request")
		workers    = flag.Int("workers", 0, "EstimateBatch workers (0 = GOMAXPROCS)")
		poolBound  = flag.Int("pool", 4096, "representation pool entry bound")
		retrain    = flag.Duration("retrain", 0, "background retrain+publish interval; in -peers mode also the promoted member's training cadence (0 disables training entirely)")

		gateSlack = flag.Float64("gate-slack", 0.10, "allowed relative validation q-error regression before a retrained model is gated (negative disables the gate)")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint every Nth published model (requires -checkpoint)")
		brkFails  = flag.Int("breaker-failures", 3, "consecutive batch failures that trip degraded serving")
		brkCool   = flag.Duration("breaker-cooldown", 250*time.Millisecond, "open-breaker wait before a half-open probe")
		faults    = flag.String("faults", "", "fault injection spec, e.g. 'daemon.retrain:panic:count=2;serve.batch:error:p=0.1' (chaos testing only)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for probabilistic fault rules")

		replListen = flag.String("replicate-listen", "", "replication listener address (primary side, or the promotion listener of a -peers member): stream every publication to follower daemons")
		follow     = flag.String("follow", "", "primary replication address to follow (replica side: serve the primary's models, no local training)")
		peers      = flag.String("peers", "", "comma-separated ordered replication peer list (HA cluster member mode: follow the live primary through this list)")
		promoRank  = flag.Int("promote-rank", -1, "promotion rank in -peers mode: 0 promotes first on primary-lease expiry, -1 never promotes (requires -replicate-listen when >= 0)")
		lease      = flag.Duration("lease", 3*time.Second, "base primary-liveness lease in -peers mode (rank r waits (r+1) leases)")
		heartbeat  = flag.Duration("heartbeat", 500*time.Millisecond, "replication heartbeat interval (both sides)")
		replToken  = flag.String("replicate-token", "", "pre-shared replication auth token (constant-time checked on the handshake; empty disables)")
	)
	flag.Parse()
	if *replListen != "" && *follow != "" {
		log.Fatal("costestd: -replicate-listen and -follow are mutually exclusive (relay topologies are not supported)")
	}
	if *peers != "" && *follow != "" {
		log.Fatal("costestd: -peers and -follow are mutually exclusive (a cluster member finds the primary through the peer list)")
	}
	if *peers == "" && *promoRank >= 0 {
		log.Fatal("costestd: -promote-rank requires -peers")
	}
	if *peers != "" && *promoRank >= 0 && *replListen == "" {
		log.Fatal("costestd: a promotable member (-promote-rank >= 0) needs -replicate-listen for its own replication listener")
	}

	if *faults != "" {
		inj, err := fault.ParseSpec(*faults, *faultSeed)
		if err != nil {
			log.Fatalf("costestd: -faults: %v", err)
		}
		fault.Enable(inj)
		log.Printf("costestd: FAULT INJECTION ENABLED: %s (seed %d)", *faults, *faultSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Substrate: synthetic database, statistics, a labeled workload for
	// normalizer fitting (and training, when there is no checkpoint).
	start := time.Now()
	db := dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: *scale})
	cat := stats.Collect(db, stats.Options{Buckets: 40, SampleSize: 64, Seed: 1})
	eng := exec.NewEngine(db)
	pl := planner.New(pg.New(cat), db.Schema)
	labeler := &workload.Labeler{Planner: pl, Engine: eng}
	labeled := labeler.Label(workload.TrainingNumeric(db, *seed, *queries))
	enc := feature.NewEncoder(cat, strembed.ZeroEncoder{}, true)
	var eps []*feature.EncodedPlan
	var sample *serve.WirePlan
	for _, s := range labeled {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			log.Fatalf("costestd: encode: %v", err)
		}
		eps = append(eps, ep)
		if sample == nil {
			sample = serve.EncodeWire(s.Plan)
		}
	}
	if len(eps) == 0 {
		log.Fatal("costestd: empty training corpus")
	}
	log.Printf("costestd: substrate ready in %v (%d labeled plans)", time.Since(start).Round(time.Millisecond), len(eps))

	var model *core.Model
	if *follow != "" || *peers != "" {
		// Replica/member mode: weights arrive over the replication stream, so
		// the local model starts blank. Architecture and encoder dimensions
		// must match the primary's (the replication handshake verifies this
		// by schema hash and refuses mismatches).
		model = core.New(core.TestConfig(), enc)
		if *checkpoint != "" {
			log.Print("costestd: -checkpoint ignored in replica mode (models come from the primary)")
		}
		if *retrain > 0 && *peers == "" {
			log.Print("costestd: -retrain ignored in replica mode (models come from the primary)")
		}
	} else {
		var err error
		model, err = loadOrTrain(*checkpoint, enc, eps, *epochs, *shards, *patience)
		if err != nil {
			log.Fatalf("costestd: %v", err)
		}
	}

	// Serving stack: hot-swap server over a generation-tagged bounded pool,
	// micro-batching scheduler, HTTP service.
	srv := core.NewServer(model, core.NewBoundedMemoryPool(*poolBound))
	srv.EnablePrewarm(16)
	sched := serve.NewScheduler(srv, serve.SchedulerConfig{
		QueueDepth:      *queueDepth,
		MaxBatch:        *maxBatch,
		BatchWindow:     *window,
		Workers:         *workers,
		BreakerFailures: *brkFails,
		BreakerCooldown: *brkCool,
	})
	sched.Start()
	svc := serve.NewService(sched, srv, enc)
	svc.SetSample(sample)

	// Supervised continuous train-and-serve loop: retrain cycles run under
	// panic containment with backoff restarts, candidates publish only past
	// the validation gate, and published models checkpoint crash-safely —
	// the scheduler keeps serving whatever snapshot is current throughout.
	// Wired before the HTTP server starts so /statsz never races the
	// SupervisorStats installation.
	retrainDone := make(chan struct{})
	if *retrain > 0 && *follow == "" && *peers == "" {
		sup := newSupervisor(srv, core.NewTrainer(model), eps, *seed)
		sup.Interval = *retrain
		sup.Workers = *workers
		sup.GateSlack = *gateSlack
		sup.CheckpointPath = *checkpoint
		sup.CheckpointEvery = *ckptEvery
		sup.logf = log.Printf
		svc.SupervisorStats = sup.stats
		go func() {
			defer close(retrainDone)
			sup.run(ctx)
		}()
	} else {
		close(retrainDone)
	}

	// Replication wiring: a primary taps every publication and streams
	// frames to follower daemons; a replica applies the primary's frames
	// into its local server and only turns ready once the first replicated
	// model is serving. Either side reports under "replication" in /statsz.
	var pub *replica.Publisher
	followerDone := make(chan struct{})
	becomeReady := func() { svc.SetReady(true) }
	switch {
	case *peers != "":
		// HA cluster member: follow the live primary through the ordered peer
		// list; a promotable member (rank >= 0) watches the primary lease and
		// takes over as the training primary when it lapses. After promotion,
		// -retrain paces the member's training epochs exactly as it paces a
		// boot primary's retrain cycles — and with -retrain 0 (the default)
		// the promoted member serves and heartbeats without advancing the
		// model, again like a boot primary: a failover must not silently
		// switch on continuous training load.
		var memberTrain []*feature.EncodedPlan
		if *retrain > 0 {
			memberTrain = eps
		}
		member := replica.NewMember(replica.MemberConfig{
			Peers:         strings.Split(*peers, ","),
			Rank:          *promoRank,
			Token:         *replToken,
			Server:        srv,
			Model:         model,
			Listen:        *replListen,
			Lease:         *lease,
			Heartbeat:     *heartbeat,
			Train:         memberTrain,
			BatchSize:     16,
			Workers:       *workers,
			Shards:        *shards,
			TrainInterval: *retrain,
			Logf:          log.Printf,
		})
		go func() {
			defer close(followerDone)
			member.Run(ctx)
		}()
		svc.ReplicationStats = func() any {
			if p := member.Publisher(); p != nil {
				return p.Stats()
			}
			return member.Follower().Stats()
		}
		svc.ClusterStats = func() any { return member.Stats() }
		svc.ClusterState = func() string { return member.State().String() }
		svc.GenerationOf = member.EpochGenOf
		log.Printf("costestd: cluster member (rank %d) following peers %s", *promoRank, *peers)
		becomeReady = func() {
			go func() {
				if err := member.WaitReady(ctx); err != nil {
					return // shutting down before the first frame arrived
				}
				svc.SetReady(true)
				log.Printf("costestd: serving cluster weights (epoch %d, generation %d, state %s), admitting traffic",
					member.Epoch(), member.Generation(), member.State())
			}()
		}
	case *replListen != "":
		pub = replica.NewPublisher(model, srv.Version(), replica.PublisherConfig{
			Token:     *replToken,
			Heartbeat: *heartbeat,
			Logf:      log.Printf,
		})
		srv.SetPublishHook(pub.OnPublish)
		rln, err := net.Listen("tcp", *replListen)
		if err != nil {
			log.Fatalf("costestd: replicate-listen: %v", err)
		}
		go pub.Serve(rln)
		svc.ReplicationStats = func() any { return pub.Stats() }
		svc.GenerationOf = func(version uint64) (uint64, uint64, bool) {
			g, ok := pub.GenOf(version)
			return pub.Epoch(), g, ok
		}
		close(followerDone)
		log.Printf("costestd: replicating publications on %s (epoch %d)", rln.Addr(), pub.Epoch())
	case *follow != "":
		fol := replica.NewFollower(replica.FollowerConfig{
			Addr:      *follow,
			Token:     *replToken,
			Server:    srv,
			Model:     model,
			Heartbeat: *heartbeat,
			Logf:      log.Printf,
		})
		go func() {
			defer close(followerDone)
			fol.Run(ctx)
		}()
		svc.ReplicationStats = func() any { return fol.Stats() }
		svc.GenerationOf = fol.EpochGenOf
		log.Printf("costestd: following primary %s", *follow)
		becomeReady = func() {
			go func() {
				if err := fol.WaitReady(ctx); err != nil {
					return // shutting down before the first frame arrived
				}
				svc.SetReady(true)
				log.Printf("costestd: first replicated model applied (generation %d), admitting traffic", fol.Generation())
			}()
		}
	default:
		close(followerDone)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("costestd: listen: %v", err)
	}
	httpSrv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	becomeReady()
	log.Printf("costestd: serving v%d on %s (%d params, queue %d, max batch %d, window %v)",
		srv.Version(), ln.Addr(), model.NumParams(), *queueDepth, *maxBatch, *window)

	select {
	case <-ctx.Done():
	case err := <-httpErr:
		log.Fatalf("costestd: serve: %v", err)
	}

	// Graceful drain: stop admitting (readiness flips with the drain), flush
	// everything already admitted, then close the listener.
	log.Print("costestd: signal received, draining")
	svc.SetReady(false)
	<-retrainDone
	<-followerDone
	if pub != nil {
		pub.Close()
	}
	sched.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Fatalf("costestd: shutdown: %v", err)
	}
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("costestd: serve: %v", err)
	}
	st := sched.Stats()
	log.Printf("costestd: drained clean: %d served in %d batches (mean %.1f), %d rejected, 0 dropped",
		st.Served, st.Batches, st.MeanBatch, st.Rejected)
}

// loadOrTrain cold-loads the crash-safe checkpoint at path (falling back to
// its .prev last-good copy for torn or corrupt primaries), otherwise trains
// a model and, when path is set, saves it atomically for the next cold
// start. A corrupt checkpoint with no loadable fallback is loud — it means
// durable state was lost — but never fatal: the daemon retrains from the
// workload instead of crash-looping on a bad file.
func loadOrTrain(path string, enc *feature.Encoder, eps []*feature.EncodedPlan,
	epochs, shards, patience int) (*core.Model, error) {
	if path != "" {
		m, src, err := core.LoadCheckpoint(path, enc)
		switch {
		case err == nil:
			log.Printf("costestd: cold-loaded checkpoint %s", src)
			return m, nil
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to load, nothing to warn about.
		default:
			log.Printf("costestd: CHECKPOINT UNRECOVERABLE, retraining from scratch: %v", err)
		}
	}
	cut := len(eps) * 4 / 5
	train, valid := eps[:cut], eps[cut:]
	m := core.New(core.TestConfig(), enc)
	pt := core.NewParallelTrainer(m, shards)
	defer pt.Close()
	pt.EarlyStop(core.EarlyStopOptions{Patience: patience})
	start := time.Now()
	hist := pt.Fit(train, valid, epochs, 16, 0, nil)
	last := hist[len(hist)-1]
	log.Printf("costestd: trained %d/%d epochs in %v (valid q-error: cost %.2f, card %.2f)",
		len(hist), epochs, time.Since(start).Round(time.Millisecond), last.ValidCost, last.ValidCard)
	if path != "" {
		if err := core.SaveCheckpoint(path, m); err != nil {
			return nil, err
		}
		log.Printf("costestd: saved checkpoint %s", path)
	}
	return m, nil
}
