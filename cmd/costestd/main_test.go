package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/fault"
	"costest/internal/feature"
	"costest/internal/pg"
	"costest/internal/plan"
	"costest/internal/planner"
	"costest/internal/serve"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

// Shared test substrate: one small synthetic database and labeled corpus for
// every daemon test (built once — substrate generation dominates test time).
var (
	testDB  = dataset.GenerateIMDB(dataset.Config{Seed: 1, Scale: 0.02})
	testCat = stats.Collect(testDB, stats.Options{Buckets: 30, SampleSize: 48, Seed: 1})
	testEng = exec.NewEngine(testDB)
	testPl  = planner.New(pg.New(testCat), testDB.Schema)
	testEnc = feature.NewEncoder(testCat, strembed.HashEmbedder{DimN: 12}, true)
)

// testCorpus labels a plan corpus against the shared substrate.
func testCorpus(tb testing.TB, seed int64, n int) ([]*plan.Node, []*feature.EncodedPlan) {
	tb.Helper()
	lab := &workload.Labeler{Planner: testPl, Engine: testEng}
	samples := lab.Label(workload.TrainingStrings(testDB, seed, n))
	plans := make([]*plan.Node, 0, len(samples))
	eps := make([]*feature.EncodedPlan, 0, len(samples))
	for _, s := range samples {
		ep, err := testEnc.Encode(s.Plan)
		if err != nil {
			tb.Fatalf("encode: %v", err)
		}
		plans = append(plans, s.Plan)
		eps = append(eps, ep)
	}
	if len(eps) < n/2 {
		tb.Fatalf("only %d/%d samples labeled", len(eps), n)
	}
	return plans, eps
}

// testStack builds a served, quick-trained model over the corpus: server,
// started scheduler, HTTP service — the daemon's serving stack minus main().
func testStack(tb testing.TB, eps []*feature.EncodedPlan, cfg serve.SchedulerConfig) (*core.Server, *core.Trainer, *serve.Scheduler, *serve.Service) {
	tb.Helper()
	m := core.New(core.TestConfig(), testEnc)
	tr := core.NewTrainer(m)
	tr.FitNormalizers(eps)
	tr.TrainEpochBatched(eps, 8, 1)
	srv := core.NewServer(m, core.NewBoundedMemoryPool(2048))
	sched := serve.NewScheduler(srv, cfg)
	sched.Start()
	svc := serve.NewService(sched, srv, testEnc)
	svc.SetReady(true)
	return srv, tr, sched, svc
}

// TestLoadOrTrainRoundTrip: a fresh path trains and saves; a second boot
// cold-loads the identical model.
func TestLoadOrTrainRoundTrip(t *testing.T) {
	_, eps := testCorpus(t, 401, 16)
	path := filepath.Join(t.TempDir(), "model.ckpt")

	m1, err := loadOrTrain(path, testEnc, eps, 2, 1, 0)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	m2, err := loadOrTrain(path, testEnc, eps, 2, 1, 0)
	if err != nil {
		t.Fatalf("second boot: %v", err)
	}
	for i, ep := range eps {
		c1, d1 := m1.Estimate(ep)
		c2, d2 := m2.Estimate(ep)
		if c1 != c2 || d1 != d2 {
			t.Fatalf("plan %d: cold-loaded model diverges: (%g,%g) vs (%g,%g)", i, c2, d2, c1, d1)
		}
	}
}

// TestLoadOrTrainCorruptCheckpointFallsBackToTraining: a corrupt checkpoint
// with no loadable fallback must not crash-loop the daemon — it retrains
// from the workload and overwrites the bad file with a good one.
func TestLoadOrTrainCorruptCheckpointFallsBackToTraining(t *testing.T) {
	_, eps := testCorpus(t, 402, 16)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := os.WriteFile(path, []byte("COSTESTM torn beyond repair"), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := loadOrTrain(path, testEnc, eps, 2, 1, 0)
	if err != nil {
		t.Fatalf("corrupt checkpoint was fatal: %v", err)
	}
	if m == nil {
		t.Fatal("no model trained")
	}
	// The retrained model replaced the corrupt file atomically: the next
	// boot cold-loads it.
	got, src, err := core.LoadCheckpoint(path, testEnc)
	if err != nil {
		t.Fatalf("checkpoint not replaced after corrupt boot: %v", err)
	}
	if src != path {
		t.Fatalf("loaded from %s, want primary", src)
	}
	c1, d1 := m.Estimate(eps[0])
	c2, d2 := got.Estimate(eps[0])
	if c1 != c2 || d1 != d2 {
		t.Fatal("replacement checkpoint does not match the trained model")
	}
}

// TestLoadOrTrainInjectedReadFault: the same fallback driven by fault
// injection instead of on-disk corruption — an I/O layer that fails every
// read (both primary and .prev) still boots the daemon via fresh training.
func TestLoadOrTrainInjectedReadFault(t *testing.T) {
	_, eps := testCorpus(t, 403, 16)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if _, err := loadOrTrain(path, testEnc, eps, 2, 1, 0); err != nil {
		t.Fatalf("seed boot: %v", err)
	}

	fault.Enable(fault.New(5).Add(fault.Rule{Site: "checkpoint.read", Kind: fault.Error}))
	defer fault.Disable()
	m, err := loadOrTrain(path, testEnc, eps, 2, 1, 0)
	if err != nil {
		t.Fatalf("unreadable checkpoint was fatal: %v", err)
	}
	if m == nil {
		t.Fatal("no model trained under read faults")
	}
}

// TestFaultSpecFlagParses pins the -faults flag's spec syntax end to end
// (the smoke test depends on it).
func TestFaultSpecFlagParses(t *testing.T) {
	inj, err := fault.ParseSpec("daemon.retrain:panic:count=2;serve.batch:error:after=5:count=4;checkpoint.rename:crash:count=1", 7)
	if err != nil {
		t.Fatalf("spec rejected: %v", err)
	}
	if inj == nil {
		t.Fatal("nil injector")
	}
	if _, err := fault.ParseSpec("serve.batch:explode", 7); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("bad kind accepted: %v", err)
	}
}
