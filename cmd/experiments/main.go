// Command experiments regenerates every table and figure of the paper's
// evaluation section over the synthetic IMDB substrate.
//
// Usage:
//
//	experiments [-preset small|full] [-suite all|numeric|strings]
//	            [-trainer parallel|sequential] [-shards N]
//	            [-scale F] [-epochs N] [-seed N] [-out FILE]
//
// The small preset finishes in about a minute of CPU; full approaches the
// paper's workload sizes and takes much longer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"costest/internal/experiments"
)

func main() {
	log.SetFlags(0)
	preset := flag.String("preset", "small", "configuration preset: small or full")
	suite := flag.String("suite", "all", "which suite to run: all, numeric or strings")
	trainer := flag.String("trainer", "", "training runtime: parallel (data-parallel epoch loop) or sequential; empty keeps the preset's choice")
	shards := flag.Int("shards", 0, "data-parallel shard count for -trainer=parallel (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 0, "override dataset scale factor")
	epochs := flag.Int("epochs", 0, "override training epochs")
	seed := flag.Int64("seed", 0, "override random seed")
	out := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	var cfg experiments.Config
	switch *preset {
	case "small":
		cfg = experiments.Small()
	case "full":
		cfg = experiments.Full()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	switch *trainer {
	case "":
		// keep the preset's runtime
	case experiments.TrainerParallel, experiments.TrainerSequential:
		cfg.Trainer = *trainer
	default:
		log.Fatalf("unknown trainer %q (want parallel or sequential)", *trainer)
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}

	start := time.Now()
	log.Printf("building environment (scale=%.2f, sample=%d, trainer=%s)...",
		cfg.Scale, cfg.SampleSize, cfg.Trainer)
	env := experiments.NewEnv(cfg)
	log.Printf("database: %d rows across %d tables (%.1fs)",
		env.DB.TotalRows(), len(env.DB.Tables), time.Since(start).Seconds())

	report := ""
	if *suite == "all" || *suite == "numeric" {
		t := time.Now()
		log.Printf("running numeric suite (Tables 7-8, Figure 7)...")
		res, err := env.RunNumeric()
		if err != nil {
			log.Fatalf("numeric suite: %v", err)
		}
		report += experiments.ReportNumeric(res)
		log.Printf("numeric suite done (%.1fs)", time.Since(t).Seconds())
	}
	if *suite == "all" || *suite == "strings" {
		t := time.Now()
		log.Printf("running string suite (Tables 10-12, Figures 8-10)...")
		res, err := env.RunStrings()
		if err != nil {
			log.Fatalf("string suite: %v", err)
		}
		report += "\n" + experiments.ReportStrings(res)
		log.Printf("string suite done (%.1fs)", time.Since(t).Seconds())
	}

	fmt.Println(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("report written to %s", *out)
	}
	log.Printf("total: %.1fs", time.Since(start).Seconds())
}
