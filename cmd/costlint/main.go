// Command costlint is the project's static-analysis gate: it runs the
// internal/analysis suite — faultsite, noalloc, canonicaldot,
// atomichygiene — over the named packages and exits non-zero on any
// finding. `make lint` (part of `make check` and CI) runs it over ./...,
// which also enables the whole-program registered-but-never-injected check
// on the fault-site registry.
//
// Usage:
//
//	costlint [-unused-sites=auto|on|off] [packages...]
//
// With no arguments, ./... is assumed. The tree must build: the analyzers
// consume compiled export data produced by `go list -export`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"costest/internal/analysis"
)

func main() {
	unused := flag.String("unused-sites", "auto",
		"check for registered-but-never-injected fault sites: auto enables it when a ./... pattern is present, on/off force it")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: costlint [flags] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *unused {
	case "on":
		prog.CheckUnusedSites = true
	case "off":
	default:
		for _, p := range patterns {
			if p == "./..." || strings.HasSuffix(p, "/...") {
				prog.CheckUnusedSites = true
			}
		}
	}

	diags := analysis.RunAnalyzers(prog, analysis.Analyzers())
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "costlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
