// Command costest is the interactive face of the library: it generates the
// synthetic IMDB database, trains the tree-structured estimator, and lets
// you inspect plans, estimates and dataset statistics.
//
// Subcommands:
//
//	costest demo  [-scale F] [-queries N] [-epochs N]  end-to-end train + eval
//	costest plan  [-scale F] [-seed N] [-joins N]      show a planned query
//	costest data  [-scale F]                           dataset summary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"costest/internal/core"
	"costest/internal/dataset"
	"costest/internal/exec"
	"costest/internal/feature"
	"costest/internal/metrics"
	"costest/internal/pg"
	"costest/internal/plan"
	"costest/internal/planner"
	"costest/internal/sqlpred"
	"costest/internal/stats"
	"costest/internal/strembed"
	"costest/internal/workload"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo(os.Args[2:])
	case "plan":
		showPlan(os.Args[2:])
	case "data":
		dataSummary(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: costest <demo|plan|data> [flags]")
	os.Exit(2)
}

type env struct {
	db  *dataset.DB
	cat *stats.Catalog
	eng *exec.Engine
	pg  *pg.Estimator
	pl  *planner.Planner
}

func buildEnv(scale float64, seed int64) *env {
	db := dataset.GenerateIMDB(dataset.Config{Seed: seed, Scale: scale})
	cat := stats.Collect(db, stats.Options{Buckets: 60, SampleSize: 128, Seed: seed})
	est := pg.New(cat)
	return &env{
		db: db, cat: cat,
		eng: exec.NewEngine(db),
		pg:  est,
		pl:  planner.New(est, db.Schema),
	}
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale factor")
	nq := fs.Int("queries", 400, "training queries")
	epochs := fs.Int("epochs", 10, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	start := time.Now()
	e := buildEnv(*scale, *seed)
	log.Printf("database: %d rows across %d tables", e.db.TotalRows(), len(e.db.Tables))

	lab := &workload.Labeler{Planner: e.pl, Engine: e.eng}
	trainQ := workload.TrainingStrings(e.db, *seed+10, *nq)
	labeled := lab.Label(trainQ)
	train, valid := workload.Split(labeled, 0.9)
	log.Printf("labeled %d/%d training queries (%.1fs)", len(labeled), *nq, time.Since(start).Seconds())

	ws := collectStrings(train)
	embCfg := strembed.DefaultConfig()
	embCfg.Dim = 24
	embCfg.MaxValuesPerColumn = 4000
	emb := strembed.Build(e.db, ws, embCfg)
	log.Printf("string embedding: %d rules selected, dictionary of %d substrings",
		len(emb.Rules), emb.DictSize)

	enc := feature.NewEncoder(e.cat, emb, true)
	cfg := core.DefaultConfig()
	cfg.OpEmbed, cfg.MetaEmbed, cfg.BitmapEmbed, cfg.PredEmbed = 16, 16, 16, 16
	cfg.Hidden, cfg.EstHidden = 32, 16
	cfg.LearnRate = 0.003
	model := core.New(cfg, enc)
	log.Printf("model: %d parameters (pred=%v rep=%v multitask)", model.NumParams(), cfg.Pred, cfg.Rep)

	encode := func(ss []*workload.Labeled) []*feature.EncodedPlan {
		var out []*feature.EncodedPlan
		for _, s := range ss {
			ep, err := enc.Encode(s.Plan)
			if err != nil {
				log.Fatalf("encode: %v", err)
			}
			out = append(out, ep)
		}
		return out
	}
	trE, vaE := encode(train), encode(valid)
	tr := core.NewTrainer(model)
	tr.Fit(trE, vaE, *epochs, 16, func(s core.EpochStats) {
		log.Printf("epoch %2d  loss=%8.2f  valid cost q=%6.2f  valid card q=%6.2f",
			s.Epoch, s.TrainLoss, s.ValidCost, s.ValidCard)
	})

	// Test on unseen JOB-style queries; compare against PG.
	e.pg.Calibrate(plansOf(train))
	testQ := workload.JOBFull(e.db, *seed+99, 30)
	testS := lab.Label(testQ)
	var pgCard, pgCost, tCard, tCost []float64
	for _, s := range testS {
		p := s.Plan.Clone()
		pgCard = append(pgCard, metrics.QError(e.pg.EstimateCard(p), s.Card))
		pgCost = append(pgCost, metrics.QError(e.pg.EstimateCost(p), s.Cost))
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			log.Fatalf("encode: %v", err)
		}
		cost, card := model.Estimate(ep)
		tCard = append(tCard, metrics.QError(card, s.Card))
		tCost = append(tCost, metrics.QError(cost, s.Cost))
	}
	fmt.Println()
	fmt.Println(metrics.Header("JOB-style test"))
	fmt.Println(metrics.Summarize(pgCard).Row("PGCard"))
	fmt.Println(metrics.Summarize(tCard).Row("TreeModel card"))
	fmt.Println(metrics.Summarize(pgCost).Row("PGCost"))
	fmt.Println(metrics.Summarize(tCost).Row("TreeModel cost"))
	log.Printf("total: %.1fs", time.Since(start).Seconds())
}

func collectStrings(samples []*workload.Labeled) []strembed.WorkloadString {
	var out []strembed.WorkloadString
	seen := map[string]bool{}
	add := func(w strembed.WorkloadString) {
		key := w.Table + "|" + w.Column + "|" + w.S
		if w.S != "" && !seen[key] {
			seen[key] = true
			out = append(out, w)
		}
	}
	for _, s := range samples {
		for _, f := range s.Query.Filters {
			sqlpred.Walk(f, func(a *sqlpred.Atom) {
				if !a.IsStr {
					return
				}
				switch a.Op {
				case sqlpred.OpEq, sqlpred.OpNe:
					add(strembed.WorkloadString{Table: a.Table, Column: a.Column,
						S: a.StrVal, Kind: strembed.MatchExact})
				case sqlpred.OpIn:
					for _, v := range a.InVals {
						add(strembed.WorkloadString{Table: a.Table, Column: a.Column,
							S: v, Kind: strembed.MatchExact})
					}
				case sqlpred.OpLike, sqlpred.OpNotLike:
					core, pre, suf := strembed.PatternParts(a.StrVal)
					kind := strembed.MatchExact
					switch {
					case pre && suf:
						kind = strembed.MatchContains
					case pre:
						kind = strembed.MatchSuffix
					case suf:
						kind = strembed.MatchPrefix
					}
					add(strembed.WorkloadString{Table: a.Table, Column: a.Column, S: core, Kind: kind})
				}
			})
		}
	}
	return out
}

func plansOf(samples []*workload.Labeled) []*plan.Node {
	out := make([]*plan.Node, len(samples))
	for i, s := range samples {
		out[i] = s.Plan
	}
	return out
}

func showPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale factor")
	seed := fs.Int64("seed", 7, "query generator seed")
	joins := fs.Int("joins", 2, "number of joins")
	fs.Parse(args)

	e := buildEnv(*scale, 1)
	g := workload.NewGenerator(e.db, *seed)
	qs := g.Generate(workload.Spec{
		MinJoins: *joins, MaxJoins: *joins,
		MaxAtomsPerTable: 2, StringProb: 0.4, OrProb: 0.2, FilterProb: 0.9,
	}, 1)
	q := qs[0]
	fmt.Println("SQL:")
	fmt.Println("  " + q.SQL())

	root, err := e.pl.Plan(q)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	if _, err := e.eng.Run(root); err != nil {
		log.Fatalf("execute: %v", err)
	}
	e.pg.Annotate(root)
	fmt.Println("\nPhysical plan (est = PostgreSQL-style estimate, real = executed):")
	fmt.Print(root)
	fmt.Printf("\ntrue cost: %.2f ms   PG estimated cost: %.2f (uncalibrated units)\n",
		root.TrueCost, root.EstCost)
}

func dataSummary(args []string) {
	fs := flag.NewFlagSet("data", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale factor")
	fs.Parse(args)

	e := buildEnv(*scale, 1)
	names := make([]string, 0, len(e.db.Tables))
	for n := range e.db.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-18s %10s %8s\n", "table", "rows", "columns")
	for _, n := range names {
		t := e.db.Table(n)
		fmt.Printf("%-18s %10d %8d\n", n, t.NumRows, len(t.Cols))
	}
	fmt.Printf("\ntotal rows: %d\n", e.db.TotalRows())

	cs := e.cat.Column("title", "production_year")
	fmt.Printf("\ntitle.production_year: ndv=%d min=%.0f max=%.0f mcvs=%d\n",
		cs.NDV, cs.Min, cs.Max, len(cs.MCVs))
}
