#!/bin/sh
# Regenerates a benchmark snapshot so the perf trajectory of the runtime is
# tracked in-tree. Two suites:
#
#   scripts/bench_json.sh [BENCH_INFERENCE.json] [inference]   hot-path kernels
#   scripts/bench_json.sh BENCH_SERVE.json serve               networked daemon
#
# Custom benchmark metrics (mean_batch/op, p99_ns/op, ...) are captured
# alongside ns/op into the JSON.
set -eu

out="${1:-BENCH_INFERENCE.json}"
suite="${2:-inference}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

case "$suite" in
inference)
    go test ./internal/core/ -run xxx \
        -bench 'BenchmarkForwardSingle|BenchmarkForwardPooled|BenchmarkPoolGetParallel|BenchmarkEstimateBatch|BenchmarkTrainEpoch|BenchmarkTrainEpochParallel|BenchmarkPublish|BenchmarkServer|BenchmarkFitParallel' \
        -benchmem -benchtime=1s >"$tmp"
    go test ./internal/tensor/ -run xxx -bench . -benchmem -benchtime=1s >>"$tmp"
    ;;
serve)
    go test ./internal/serve/ -run xxx -bench 'BenchmarkScheduler' \
        -benchmem -benchtime=1s >"$tmp"
    ;;
*)
    echo "unknown suite: $suite (want inference or serve)" >&2
    exit 2
    ;;
esac

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "{"; printf "  \"generated\": \"%s\",\n  \"benchmarks\": {\n", date; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; extra = ""
    for (i = 2; i < NF; i++) {
        unit = $(i+1)
        if (unit == "ns/op") { nsop = $i; continue }
        if (unit !~ /\/op$/) continue
        key = unit; sub(/\/op$/, "", key)
        if (key == "B") key = "bytes_per_op"
        else if (key == "allocs") key = "allocs_per_op"
        extra = extra sprintf(", \"%s\": %s", key, $i)
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s%s}", name, nsop, extra
}
END { print "\n  }\n}" }
' "$tmp" >"$out"

echo "wrote $out"
