#!/bin/sh
# Regenerates the hot-path benchmark snapshot (BENCH_INFERENCE.json by
# default) so the perf trajectory of the inference runtime is tracked in-tree.
# Usage: scripts/bench_json.sh [output.json]
set -eu

out="${1:-BENCH_INFERENCE.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/core/ -run xxx \
    -bench 'BenchmarkForwardSingle|BenchmarkForwardPooled|BenchmarkPoolGetParallel|BenchmarkEstimateBatch|BenchmarkTrainEpoch|BenchmarkTrainEpochParallel|BenchmarkPublish|BenchmarkServer|BenchmarkFitParallel' \
    -benchmem -benchtime=1s >"$tmp"
go test ./internal/tensor/ -run xxx -bench . -benchmem -benchtime=1s >>"$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "{"; printf "  \"generated\": \"%s\",\n  \"benchmarks\": {\n", date; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") nsop = $i
        if ($(i+1) == "B/op") bop = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (nsop == "") next
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", name, nsop
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n  }\n}" }
' "$tmp" >"$out"

echo "wrote $out"
