#!/bin/sh
# Coverage gate: run the full test suite with statement coverage, write the
# per-function summary (coverage.txt) and raw profile (coverage.out) for CI
# to archive, and fail when the replication runtime — the newest layer with
# the strictest correctness contract (bit-identity over a lossy wire) —
# drops below its floor. Repo-wide coverage is reported but not gated;
# the floor applies where a regression would mean an untested frame-protocol
# or resync path.
# Run from the repository root: scripts/check_coverage.sh
set -eu

FLOOR_PCT=${FLOOR_PCT:-80}
GATED_PKG=costest/internal/replica

go test -count=1 -coverprofile=coverage.out ./...
go tool cover -func=coverage.out >coverage.txt

total=$(grep '^total:' coverage.txt | awk '{print $NF}')
echo "check_coverage: repo total statement coverage $total"

# Statement coverage for the gated package, computed from the raw profile:
# each profile line is "file:start,end numstmts hitcount".
pct=$(awk -v pkg="$GATED_PKG/" '
    index($1, pkg) == 1 { total += $2; if ($3 > 0) covered += $2 }
    END {
        if (total == 0) { print "none"; exit }
        printf "%.1f", 100 * covered / total
    }
' coverage.out)

if [ "$pct" = "none" ]; then
    echo "check_coverage: FAILED — no profiled statements for $GATED_PKG"
    exit 1
fi
echo "check_coverage: $GATED_PKG statement coverage ${pct}% (floor ${FLOOR_PCT}%)"
if awk -v p="$pct" -v f="$FLOOR_PCT" 'BEGIN { exit !(p < f) }'; then
    echo "check_coverage: FAILED — $GATED_PKG below ${FLOOR_PCT}% floor"
    exit 1
fi
echo "check_coverage: OK"
