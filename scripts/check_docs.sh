#!/bin/sh
# Docs-consistency gate: fail when the navigational docs reference repo
# paths that don't exist (stale file moves are how architecture docs rot).
# Checks two reference forms in README.md / ARCHITECTURE.md / PERFORMANCE.md:
#   - markdown links:  [text](path)        (http(s) and #anchors skipped)
#   - backticked repo paths rooted at a top-level directory or a root file
#     with an extension: `internal/core/pool.go`, `cmd/experiments`,
#     `BENCH_INFERENCE.json`. Bare filename shorthand (`pool.go` inside a
#     paragraph about internal/core) and non-path notation (`hash/maphash`,
#     `dR/2`) are deliberately not checked.
# Run from the repository root: scripts/check_docs.sh
set -eu

status=0
for doc in README.md ARCHITECTURE.md PERFORMANCE.md; do
    [ -f "$doc" ] || { echo "check_docs: missing $doc"; status=1; continue; }

    refs=$(
        grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//'
        grep -oE '`[A-Za-z0-9_./-]+`' "$doc" | tr -d '`' |
            grep -E '^(internal|cmd|examples|scripts|\.github)(/|$)|^[A-Za-z0-9_.-]+\.(md|json|sh|yml|mod)$' || true
    )
    for ref in $refs; do
        case "$ref" in
        http://* | https://* | \#*) continue ;;
        esac
        path=${ref%%#*} # strip anchors from links like FILE.md#section
        # Strip trailing path globs/ellipses used in prose (cmd/, internal/...).
        case "$path" in
        */...) path=${path%/...} ;;
        esac
        case "$path" in
        */) path=${path%/} ;;
        esac
        if [ ! -e "$path" ]; then
            echo "$doc references missing path: $ref"
            status=1
        fi
    done
done

# Required sections: each runtime layer documents itself under a stable
# heading; a rename or deletion silently orphans the cross-references the
# other docs and ROADMAP make to these sections.
require_section() {
    if ! grep -q "^#.*$2" "$1"; then
        echo "$1 missing required section: $2"
        status=1
    fi
}
require_section PERFORMANCE.md "Batched training runtime"
require_section PERFORMANCE.md "Hot-swap serving runtime"
require_section PERFORMANCE.md "Data-parallel training runtime"
require_section PERFORMANCE.md "Continuous train-and-serve loop"
require_section PERFORMANCE.md "Networked estimator daemon"
require_section PERFORMANCE.md "Fault tolerance layer"
require_section PERFORMANCE.md "Scale-out replication"
require_section ARCHITECTURE.md "Runtime layers"
require_section ARCHITECTURE.md "Static-analysis layer"
require_section ARCHITECTURE.md "Networked serving"
require_section ARCHITECTURE.md "Fault tolerance"
require_section ARCHITECTURE.md "Scale-out replication"
require_section README.md "A replicated cluster"

if [ "$status" -ne 0 ]; then
    echo "check_docs: FAILED — fix the stale references above"
else
    echo "check_docs: OK"
fi
exit $status
