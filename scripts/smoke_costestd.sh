#!/bin/sh
# End-to-end smoke test for the networked estimator daemon, three scenarios:
#
#  1. Serve + graceful drain: build costestd, start it cold (tiny substrate,
#     short training, checkpoint saved), wait for readiness, serve one
#     estimate discovered via /samplez, then SIGTERM and require a graceful
#     exit (drain log line + exit status 0).
#  2. Kill mid-checkpoint: reboot against the saved checkpoint with an
#     injected crash between the checkpoint's durable temp write and its
#     rename (-faults 'checkpoint.rename:crash:count=1'). The process must
#     die with the injected-crash status, the checkpoint file must be
#     byte-identical to before the crash, and a third boot must still
#     cold-load it.
#  3. Replication: a primary with -replicate-listen retraining continuously,
#     a follower with -follow that must turn ready only once the first
#     replicated model lands and then serve /estimate answers identical to
#     the primary's; the follower is then killed (-9) mid-stream, restarted,
#     and must catch up to identical answers again.
#  4. Failover: a primary streams to a promotable cluster member (-peers,
#     -promote-rank 0). The primary is killed -9; the member's lease lapses,
#     it promotes (epoch 2 in /statsz and /estimate) and keeps serving; the
#     old primary then restarts as a follower of the new primary and catches
#     up to byte-identical answers.
#
# Run from the repository root: scripts/smoke_costestd.sh [port]
# (the replication scenarios also use port+1 .. port+3)
set -eu

port="${1:-18099}"
work="$(mktemp -d)"
bin="$work/costestd"
ckpt="$work/model.ckpt"
logf="$(mktemp)"
pid=""
pid2=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill -9 "$pid2" 2>/dev/null || true
    rm -rf "$work" "$logf"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/costestd

# wait_ready polls /readyz until 200, failing loudly if the daemon dies.
wait_ready() {
    i=0
    while [ "$i" -lt 120 ]; do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz" 2>/dev/null)" = 200 ]; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || { echo "smoke_costestd: daemon died during startup"; cat "$logf"; exit 1; }
        i=$((i + 1))
        sleep 0.5
    done
    echo "smoke_costestd: /readyz never became ready"
    cat "$logf"
    exit 1
}

"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 -epochs 2 -checkpoint "$ckpt" >"$logf" 2>&1 &
pid=$!

base="http://127.0.0.1:$port"
wait_ready

curl -sf "$base/healthz" >/dev/null || { echo "smoke_costestd: /healthz failed"; exit 1; }

sample="$(curl -sf "$base/samplez")"
resp="$(printf '%s' "$sample" | curl -sf -X POST --data @- "$base/estimate")"
printf '%s' "$resp" | grep -q '"version": *[1-9]' || {
    echo "smoke_costestd: /estimate returned no versioned estimate: $resp"
    exit 1
}
curl -sf "$base/statsz" | grep -q '"served": *[1-9]' || {
    echo "smoke_costestd: /statsz does not count the served request"
    exit 1
}

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: exit status $status after SIGTERM"; cat "$logf"; exit 1; }
grep -q "drained clean" "$logf" || { echo "smoke_costestd: no drain log line"; cat "$logf"; exit 1; }
[ -f "$ckpt" ] || { echo "smoke_costestd: first boot saved no checkpoint"; exit 1; }

# Scenario 2: kill mid-checkpoint. Cold-load the checkpoint, retrain fast
# with the gate disabled so the first publish checkpoints immediately, and
# crash between the durable temp write and the rename.
sum_before="$(cksum <"$ckpt")"
: >"$logf"
"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 -epochs 2 \
    -checkpoint "$ckpt" -retrain 250ms -gate-slack=-1 -checkpoint-every 1 \
    -faults 'checkpoint.rename:crash:count=1' >"$logf" 2>&1 &
pid=$!
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 3 ] || { echo "smoke_costestd: injected crash exit status $status, want 3"; cat "$logf"; exit 1; }
grep -q "cold-loaded checkpoint" "$logf" || { echo "smoke_costestd: crash boot did not cold-load"; cat "$logf"; exit 1; }
grep -q "injected crash at checkpoint.rename" "$logf" || { echo "smoke_costestd: no injected-crash log"; cat "$logf"; exit 1; }
[ -f "$ckpt.tmp" ] || { echo "smoke_costestd: no durable temp file from the interrupted checkpoint"; exit 1; }
sum_after="$(cksum <"$ckpt")"
[ "$sum_before" = "$sum_after" ] || {
    echo "smoke_costestd: kill mid-checkpoint modified the last-good checkpoint"
    exit 1
}

# Scenario 2, boot 3: the last-good file still cold-starts the daemon.
: >"$logf"
"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 -epochs 2 -checkpoint "$ckpt" >"$logf" 2>&1 &
pid=$!
wait_ready
grep -q "cold-loaded checkpoint" "$logf" || { echo "smoke_costestd: post-crash boot retrained instead of cold-loading"; cat "$logf"; exit 1; }
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: post-crash boot exit status $status"; cat "$logf"; exit 1; }

# Scenario 3: replication. A continuously retraining primary streams every
# publication to a follower; the follower serves identical answers, survives
# a kill -9 mid-stream, and catches up after restart. Publications race the
# probes, so identity is asserted with a retry loop: some attempt must catch
# both daemons on the same generation with byte-identical /estimate bodies.
fport=$((port + 1))
rport=$((port + 2))
plog="$work/primary.log"
flog="$work/follower.log"

"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 -epochs 2 \
    -retrain 400ms -gate-slack=-1 \
    -replicate-listen "127.0.0.1:$rport" >"$plog" 2>&1 &
pid=$!
logf="$plog"
base="http://127.0.0.1:$port"
wait_ready
sample="$(curl -sf "$base/samplez")"

start_follower() {
    "$bin" -addr "127.0.0.1:$fport" -scale 0.02 -queries 60 \
        -follow "127.0.0.1:$rport" >>"$flog" 2>&1 &
    pid2=$!
}

# wait_follower_ready: like wait_ready but for the follower process.
wait_follower_ready() {
    i=0
    while [ "$i" -lt 120 ]; do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$fport/readyz" 2>/dev/null)" = 200 ]; then
            return 0
        fi
        kill -0 "$pid2" 2>/dev/null || { echo "smoke_costestd: follower died during startup"; cat "$flog"; exit 1; }
        i=$((i + 1))
        sleep 0.5
    done
    echo "smoke_costestd: follower /readyz never became ready"
    cat "$flog"
    exit 1
}

# expect_identical: retry until primary and follower serve identical
# cost/card bits for the sample plan. The version fields are local server
# counters (a restarted follower restarts its own counter), so the bits are
# what must agree; publications race the probes, so some attempt must catch
# both daemons on the same generation's model.
expect_identical() {
    i=0
    while [ "$i" -lt 60 ]; do
        rp="$(printf '%s' "$sample" | curl -sf -X POST --data @- "$base/estimate" | grep -E '"(cost|card)"' || true)"
        rf="$(printf '%s' "$sample" | curl -sf -X POST --data @- "http://127.0.0.1:$fport/estimate" | grep -E '"(cost|card)"' || true)"
        if [ -n "$rp" ] && [ "$rp" = "$rf" ]; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.25
    done
    echo "smoke_costestd: follower never served an /estimate identical to the primary's"
    echo "primary:  $rp"
    echo "follower: $rf"
    cat "$flog"
    exit 1
}

start_follower
wait_follower_ready
grep -q "first replicated model applied" "$flog" || {
    echo "smoke_costestd: follower turned ready without a replicated model"
    cat "$flog"
    exit 1
}
expect_identical
curl -sf "http://127.0.0.1:$fport/statsz" | grep -q '"snapshot_frames_applied": *[1-9]' || {
    echo "smoke_costestd: follower /statsz shows no snapshot applied"
    exit 1
}

# Kill the follower mid-stream (ungraceful), let the primary publish on,
# then restart and require catch-up to identical answers again.
kill -9 "$pid2"
wait "$pid2" 2>/dev/null || true
pid2=""
sleep 1
start_follower
wait_follower_ready
expect_identical

kill -TERM "$pid2"
status=0
wait "$pid2" || status=$?
pid2=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: follower exit status $status after SIGTERM"; cat "$flog"; exit 1; }
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: primary exit status $status after SIGTERM"; cat "$plog"; exit 1; }

# Scenario 4: failover. A primary streams to a promotable cluster member.
# kill -9 the primary: the member's primary-liveness lease lapses, it
# promotes to epoch 2 on its own replication listener and keeps serving;
# the old primary restarts as a plain follower of the new primary and
# catches back up to byte-identical answers.
rport2=$((port + 3))
alog="$work/ha_primary.log"
mlog="$work/ha_member.log"

"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 -epochs 2 \
    -retrain 400ms -gate-slack=-1 \
    -replicate-listen "127.0.0.1:$rport" >"$alog" 2>&1 &
pid=$!
logf="$alog"
base="http://127.0.0.1:$port"
wait_ready
sample="$(curl -sf "$base/samplez")"

"$bin" -addr "127.0.0.1:$fport" -scale 0.02 -queries 60 \
    -peers "127.0.0.1:$rport" -promote-rank 0 -replicate-listen "127.0.0.1:$rport2" \
    -lease 2s -heartbeat 250ms -retrain 400ms >"$mlog" 2>&1 &
pid2=$!
flog="$mlog"
wait_follower_ready
expect_identical

# Kill -9 the primary mid-stream: the member must detect the lapsed lease
# and promote within the lease bound (poll generously for slow CI).
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
i=0
while [ "$i" -lt 60 ]; do
    if curl -sf "http://127.0.0.1:$fport/statsz" | grep -q '"state": *"primary"'; then
        break
    fi
    kill -0 "$pid2" 2>/dev/null || { echo "smoke_costestd: member died during failover"; cat "$mlog"; exit 1; }
    i=$((i + 1))
    sleep 0.5
done
[ "$i" -lt 60 ] || { echo "smoke_costestd: member never promoted after primary kill"; cat "$mlog"; exit 1; }
grep -q "PROMOTED to primary at epoch 2" "$mlog" || {
    echo "smoke_costestd: no promotion log line"; cat "$mlog"; exit 1;
}
curl -sf "http://127.0.0.1:$fport/statsz" | grep -q '"epoch": *2' || {
    echo "smoke_costestd: promoted member /statsz does not report epoch 2"; exit 1;
}
[ "$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$fport/readyz" 2>/dev/null)" = 200 ] || {
    echo "smoke_costestd: promoted member stopped serving"; cat "$mlog"; exit 1;
}
printf '%s' "$sample" | curl -sf -X POST --data @- "http://127.0.0.1:$fport/estimate" | grep -q '"epoch": *2' || {
    echo "smoke_costestd: promoted member /estimate does not carry epoch 2"; exit 1;
}

# The old primary comes back — as a follower of the new primary — and must
# catch up to byte-identical answers.
"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 \
    -follow "127.0.0.1:$rport2" >>"$alog" 2>&1 &
pid=$!
wait_ready
expect_identical

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: rejoined ex-primary exit status $status after SIGTERM"; cat "$alog"; exit 1; }
kill -TERM "$pid2"
status=0
wait "$pid2" || status=$?
pid2=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: promoted member exit status $status after SIGTERM"; cat "$mlog"; exit 1; }

echo "smoke_costestd: OK (serve+drain, kill-mid-checkpoint, cold-start from last-good, replication catch-up, failover promotion)"
