#!/bin/sh
# End-to-end smoke test for the networked estimator daemon: build costestd,
# start it cold (tiny substrate, short training), wait for readiness, serve
# one estimate discovered via /samplez, then SIGTERM and require a graceful
# exit (drain log line + exit status 0).
# Run from the repository root: scripts/smoke_costestd.sh [port]
set -eu

port="${1:-18099}"
bin="$(mktemp -d)/costestd"
logf="$(mktemp)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$(dirname "$bin")" "$logf"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/costestd

"$bin" -addr "127.0.0.1:$port" -scale 0.02 -queries 60 -epochs 2 >"$logf" 2>&1 &
pid=$!

base="http://127.0.0.1:$port"
ready=""
i=0
while [ "$i" -lt 120 ]; do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz" 2>/dev/null)" = 200 ]; then
        ready=1
        break
    fi
    kill -0 "$pid" 2>/dev/null || { echo "smoke_costestd: daemon died during startup"; cat "$logf"; exit 1; }
    i=$((i + 1))
    sleep 0.5
done
[ -n "$ready" ] || { echo "smoke_costestd: /readyz never became ready"; cat "$logf"; exit 1; }

curl -sf "$base/healthz" >/dev/null || { echo "smoke_costestd: /healthz failed"; exit 1; }

sample="$(curl -sf "$base/samplez")"
resp="$(printf '%s' "$sample" | curl -sf -X POST --data @- "$base/estimate")"
printf '%s' "$resp" | grep -q '"version": *[1-9]' || {
    echo "smoke_costestd: /estimate returned no versioned estimate: $resp"
    exit 1
}
curl -sf "$base/statsz" | grep -q '"served": *[1-9]' || {
    echo "smoke_costestd: /statsz does not count the served request"
    exit 1
}

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke_costestd: exit status $status after SIGTERM"; cat "$logf"; exit 1; }
grep -q "drained clean" "$logf" || { echo "smoke_costestd: no drain log line"; cat "$logf"; exit 1; }

echo "smoke_costestd: OK"
