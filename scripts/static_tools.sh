#!/bin/sh
# Run third-party static analyzers where they are available.
#
# staticcheck and govulncheck are not vendored and this project must build
# in offline containers, so the tools are install-gated: locally they run
# only if already on PATH (or under $(go env GOPATH)/bin); CI installs both
# with network access and runs this script as a dedicated job. A missing
# tool is reported and skipped, never a failure — the blocking gate is
# costlint, which is built from the tree itself.
#
# Usage: scripts/static_tools.sh [--require]
#   --require   fail (exit 2) if a tool is missing instead of skipping it —
#               what CI uses, so an install regression cannot silently turn
#               the job into a no-op.
set -u

require=0
[ "${1:-}" = "--require" ] && require=1

gobin="$(go env GOPATH)/bin"
status=0
missing=0

run_tool() {
    name="$1"
    shift
    tool="$name"
    if ! command -v "$tool" >/dev/null 2>&1; then
        if [ -x "$gobin/$name" ]; then
            tool="$gobin/$name"
        else
            echo "static_tools: $name not installed; skipping (install: go install $2@latest)"
            missing=1
            return
        fi
    fi
    echo "static_tools: running $name"
    if ! "$tool" "$1"; then
        echo "static_tools: $name reported findings"
        status=1
    fi
}

run_tool staticcheck ./... honnef.co/go/tools/cmd/staticcheck
run_tool govulncheck ./... golang.org/x/vuln/cmd/govulncheck

if [ "$require" = 1 ] && [ "$missing" = 1 ]; then
    echo "static_tools: --require set and at least one tool is missing"
    exit 2
fi
exit "$status"
