module costest

go 1.24
