// Package costest_test holds the benchmark harness that regenerates every
// table and figure from the paper's evaluation section (run with
// `go test -bench=. -benchmem`). Heavy suites (which train whole model
// ladders) run once and are cached across benchmarks; their headline numbers
// are attached as custom benchmark metrics and the full paper-style tables
// are logged.
//
// Table/figure map:
//
//	BenchmarkTable7_*    cardinality q-errors on JOB-light/Synthetic/Scale
//	BenchmarkTable8_*    cost q-errors on the same workloads
//	BenchmarkFigure7     validation-error curves (card & cost)
//	BenchmarkTable10     cardinality q-errors on the JOB (strings) workload
//	BenchmarkTable11     cost q-errors on the JOB workload
//	BenchmarkFigure8     single-table validation curves
//	BenchmarkFigure9     error-distribution boxes
//	BenchmarkFigure10    estimated-vs-real cost quartiles
//	BenchmarkTable12_*   per-query estimation latency (the real timed loops)
//	BenchmarkAblation_*  design-choice ablations from DESIGN.md
package costest_test

import (
	"sync"
	"testing"

	"costest/internal/core"
	"costest/internal/experiments"
	"costest/internal/feature"
	"costest/internal/mscn"
	"costest/internal/strembed"
	"costest/internal/workload"
)

var (
	onceEnv  sync.Once
	benchEnv *experiments.Env

	onceNumeric sync.Once
	numericRes  *experiments.NumericResults
	numericErr  error

	onceStrings sync.Once
	stringsRes  *experiments.StringResults
	stringsErr  error
)

func env() *experiments.Env {
	onceEnv.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Small())
	})
	return benchEnv
}

func numeric(b *testing.B) *experiments.NumericResults {
	b.Helper()
	onceNumeric.Do(func() {
		numericRes, numericErr = env().RunNumeric()
	})
	if numericErr != nil {
		b.Fatal(numericErr)
	}
	return numericRes
}

func strings_(b *testing.B) *experiments.StringResults {
	b.Helper()
	onceStrings.Do(func() {
		stringsRes, stringsErr = env().RunStrings()
	})
	if stringsErr != nil {
		b.Fatal(stringsErr)
	}
	return stringsRes
}

// reportWorkload attaches the PG baseline and best-tree mean q-errors as
// metrics and logs the full table once.
func reportWorkload(b *testing.B, tables []experiments.WorkloadTable, workloadName string) {
	b.Helper()
	for _, wt := range tables {
		if wt.Workload != workloadName {
			continue
		}
		for _, m := range wt.Methods {
			b.ReportMetric(m.Summary.Mean, "qerr_mean:"+m.Name)
		}
	}
}

func BenchmarkTable7_JOBLight(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		reportWorkload(b, res.Table7, "JOB-light")
	}
	b.Log("\n" + experiments.ReportNumeric(res))
}

func BenchmarkTable7_Synthetic(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		reportWorkload(b, res.Table7, "Synthetic")
	}
}

func BenchmarkTable7_Scale(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		reportWorkload(b, res.Table7, "Scale")
	}
}

func BenchmarkTable8_JOBLight(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		reportWorkload(b, res.Table8, "JOB-light")
	}
}

func BenchmarkTable8_Synthetic(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		reportWorkload(b, res.Table8, "Synthetic")
	}
}

func BenchmarkTable8_Scale(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		reportWorkload(b, res.Table8, "Scale")
	}
}

func BenchmarkFigure7(b *testing.B) {
	res := numeric(b)
	for i := 0; i < b.N; i++ {
		for _, c := range res.Figure7a {
			if len(c.Values) > 0 {
				b.ReportMetric(c.Values[len(c.Values)-1], "final_card_q:"+c.Name)
			}
		}
		for _, c := range res.Figure7b {
			if len(c.Values) > 0 {
				b.ReportMetric(c.Values[len(c.Values)-1], "final_cost_q:"+c.Name)
			}
		}
	}
}

func BenchmarkTable10(b *testing.B) {
	res := strings_(b)
	for i := 0; i < b.N; i++ {
		for _, m := range res.Table10 {
			b.ReportMetric(m.Summary.Mean, "qerr_mean:"+m.Name)
		}
	}
	b.Log("\n" + experiments.ReportStrings(res))
}

func BenchmarkTable11(b *testing.B) {
	res := strings_(b)
	for i := 0; i < b.N; i++ {
		for _, m := range res.Table11 {
			b.ReportMetric(m.Summary.Mean, "qerr_mean:"+m.Name)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	res := strings_(b)
	for i := 0; i < b.N; i++ {
		for _, c := range res.Figure8 {
			if len(c.Values) > 0 {
				b.ReportMetric(c.Values[len(c.Values)-1], "final_card_q:"+c.Name)
			}
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	res := strings_(b)
	for i := 0; i < b.N; i++ {
		for name, box := range res.Figure9 {
			b.ReportMetric(box.Card.P50, "card_p50:"+name)
			b.ReportMetric(box.Cost.P50, "cost_p50:"+name)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	res := strings_(b)
	for i := 0; i < b.N; i++ {
		for name, pts := range res.Figure10 {
			if len(pts) > 0 {
				var ratios []float64
				for _, p := range pts {
					if p.Real > 0 {
						ratios = append(ratios, p.Est/p.Real)
					}
				}
				_ = ratios
				b.ReportMetric(float64(len(pts)), "points:"+name)
			}
		}
	}
}

// ---- Table 12: real timed inference loops ----

// timingFixture builds the encoded JOB plans and models once.
type timingFixtureT struct {
	eps       []*feature.EncodedPlan
	model     *core.Model // min-max pooling variant
	modelLSTM *core.Model
	mscnM     *mscn.Model
	feats     []*mscn.Features
}

var (
	onceTiming sync.Once
	timingFix  *timingFixtureT
	timingErr  error
)

func timing(b *testing.B) *timingFixtureT {
	b.Helper()
	onceTiming.Do(func() {
		e := env()
		qs := workload.JOBFull(e.DB, 123, 60)
		samples := e.Labeler.Label(qs)
		enc := feature.NewEncoder(e.Cat, strembed.HashEmbedder{DimN: e.Cfg.StrDim}, true)
		fix := &timingFixtureT{}
		for _, s := range samples {
			ep, err := enc.Encode(s.Plan)
			if err != nil {
				timingErr = err
				return
			}
			fix.eps = append(fix.eps, ep)
		}
		mkCfg := func(pred core.PredModel) core.Config {
			c := core.DefaultConfig()
			c.Hidden, c.EstHidden = e.Cfg.Hidden, e.Cfg.EstHidden
			c.OpEmbed, c.MetaEmbed, c.BitmapEmbed, c.PredEmbed = e.Cfg.Embed, e.Cfg.Embed, e.Cfg.Embed, e.Cfg.Embed
			c.Pred = pred
			return c
		}
		fix.model = core.New(mkCfg(core.PredPool), enc)
		fix.modelLSTM = core.New(mkCfg(core.PredLSTM), enc)
		fix.mscnM = mscn.New(mscn.Config{Hidden: e.Cfg.MSCNWidth, SampleBitmap: true, Seed: 1}, e.Cat)
		for _, s := range samples {
			f, err := fix.mscnM.Featurize(s.Query)
			if err != nil {
				timingErr = err
				return
			}
			fix.feats = append(fix.feats, f)
		}
		timingFix = fix
	})
	if timingErr != nil {
		b.Fatal(timingErr)
	}
	return timingFix
}

func BenchmarkTable12_PostgreSQL(b *testing.B) {
	e := env()
	qs := workload.JOBFull(e.DB, 123, 60)
	samples := e.Labeler.Label(qs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		e.PG.EstimateCost(s.Plan)
	}
}

func BenchmarkTable12_MSCN(b *testing.B) {
	fix := timing(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.mscnM.EstimateFeatures(fix.feats[i%len(fix.feats)])
	}
}

func BenchmarkTable12_MSCNBatch(b *testing.B) {
	fix := timing(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.mscnM.EstimateBatch(fix.feats, 0)
	}
	b.ReportMetric(float64(len(fix.feats)), "queries/op")
}

func BenchmarkTable12_TLSTM(b *testing.B) {
	fix := timing(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.modelLSTM.Estimate(fix.eps[i%len(fix.eps)])
	}
}

func BenchmarkTable12_TLSTMBatch(b *testing.B) {
	fix := timing(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.modelLSTM.EstimateBatch(fix.eps, 0)
	}
	b.ReportMetric(float64(len(fix.eps)), "queries/op")
}

func BenchmarkTable12_TPool(b *testing.B) {
	fix := timing(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.model.Estimate(fix.eps[i%len(fix.eps)])
	}
}

func BenchmarkTable12_TPoolBatch(b *testing.B) {
	fix := timing(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.model.EstimateBatch(fix.eps, 0)
	}
	b.ReportMetric(float64(len(fix.eps)), "queries/op")
}

func BenchmarkMemoryPoolWarm(b *testing.B) {
	fix := timing(b)
	pool := core.NewMemoryPool()
	for _, ep := range fix.eps {
		fix.model.EstimateWithPool(ep, pool)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fix.model.EstimateWithPool(fix.eps[i%len(fix.eps)], pool)
	}
	b.ReportMetric(pool.HitRate()*100, "hit%")
}

// ---- Ablations (design choices called out in DESIGN.md) ----

// ablationFixture trains small models under different single design
// changes and reports final validation q-errors.
func ablationTrain(b *testing.B, mutate func(*core.Config)) (costQ, cardQ float64) {
	b.Helper()
	e := env()
	qs := workload.TrainingStrings(e.DB, 321, 150)
	samples := e.Labeler.Label(qs)
	train, valid := workload.Split(samples, 0.85)
	enc := feature.NewEncoder(e.Cat, strembed.HashEmbedder{DimN: e.Cfg.StrDim}, true)
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.EstHidden = 16, 8
	cfg.OpEmbed, cfg.MetaEmbed, cfg.BitmapEmbed, cfg.PredEmbed = 8, 8, 8, 8
	cfg.LearnRate = 0.005
	mutate(&cfg)
	model := core.New(cfg, enc)
	var trE, vaE []*feature.EncodedPlan
	for _, s := range train {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			b.Fatal(err)
		}
		trE = append(trE, ep)
	}
	for _, s := range valid {
		ep, err := enc.Encode(s.Plan)
		if err != nil {
			b.Fatal(err)
		}
		vaE = append(vaE, ep)
	}
	hist := core.NewTrainer(model).Fit(trE, vaE, 6, 16, nil)
	last := hist[len(hist)-1]
	return last.ValidCost, last.ValidCard
}

func BenchmarkAblation_LossQError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost, card := ablationTrain(b, func(c *core.Config) { c.UseQError = true })
		b.ReportMetric(cost, "valid_cost_q")
		b.ReportMetric(card, "valid_card_q")
	}
}

func BenchmarkAblation_LossMSLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost, card := ablationTrain(b, func(c *core.Config) { c.UseQError = false })
		b.ReportMetric(cost, "valid_cost_q")
		b.ReportMetric(card, "valid_card_q")
	}
}

func BenchmarkAblation_MinMaxPooling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost, card := ablationTrain(b, func(c *core.Config) { c.Pred = core.PredPool })
		b.ReportMetric(cost, "valid_cost_q")
		b.ReportMetric(card, "valid_card_q")
	}
}

func BenchmarkAblation_MeanPooling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost, card := ablationTrain(b, func(c *core.Config) { c.Pred = core.PredPoolMean })
		b.ReportMetric(cost, "valid_cost_q")
		b.ReportMetric(card, "valid_card_q")
	}
}

func BenchmarkAblation_SubplanLossOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost, card := ablationTrain(b, func(c *core.Config) { c.SubplanLoss = true })
		b.ReportMetric(cost, "valid_cost_q")
		b.ReportMetric(card, "valid_card_q")
	}
}

func BenchmarkAblation_SubplanLossOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cost, card := ablationTrain(b, func(c *core.Config) { c.SubplanLoss = false })
		b.ReportMetric(cost, "valid_cost_q")
		b.ReportMetric(card, "valid_card_q")
	}
}
